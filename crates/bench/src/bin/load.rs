//! Open-loop load generator for the client-ingress/mempool subsystem.
//!
//! Drives a 4-validator cluster at a configurable per-validator
//! transaction rate and payload size through the *wire* ingestion path
//! (`Envelope::TxBatch` frames), then reports:
//!
//! - sustained committed throughput (tx/s), gated at ≥100k tx/s with
//!   p99 commit latency ≤500 ms when the offered load reaches 100k;
//! - the client-observed commit-latency histogram (p50/p99/max);
//! - peak mempool occupancy against the configured capacity;
//! - the transaction-integrity verdict (no loss, no duplication).
//!
//! A **verify-stage phase** additionally pushes signed block frames
//! through the admission pipeline (the node's parallel verify stage) and
//! reports its frame throughput, peak queue depth, and the
//! verified/rejected split — the depth gauge for sizing
//! `verify_workers`/`verify_queue_bound`.
//!
//! A second, deliberately oversubscribed **saturation phase** pushes a
//! burst far past the pool capacity and verifies the subsystem answers
//! with `SubmitResult::Full` rejections and a bounded pool instead of
//! unbounded memory growth.
//!
//! A **fairness phase** aims hundreds of Zipf-skewed clients at a single
//! validator with per-client rate limiting on, and gates on the ingress
//! subsystem's two promises: every batch is answered with an admission
//! receipt (zero receipt loss), and no compliant client — one whose
//! offered rate is within the limit — is starved relative to another
//! (min/max accepted-throughput ratio ≥ 0.5 among compliant clients).
//!
//! By default the cluster is the deterministic loopback driver (virtual
//! time, real wire codec, in-memory WALs), so the run is reproducible and
//! CI-friendly; `--tcp` runs the same workload wall-clock against real
//! TCP nodes. The binary exits non-zero if any transaction is lost or
//! duplicated, the latency histogram is empty, occupancy exceeds
//! capacity, or the saturation phase sees no rejections — CI's
//! `load-smoke` gate.
//!
//! Flags: `--quick` (short run), `--rate <tx/s per validator>`,
//! `--tx-bytes <n>`, `--duration-s <n>`, `--capacity <txs>`, `--tcp`.

use mahimahi_core::{
    engine::Input, AdmissionConfig, AdmissionPipeline, CommitterOptions, IngressConfig,
    MempoolConfig,
};
use mahimahi_dag::DagBuilder;
use mahimahi_net::time::{self, Time};
use mahimahi_node::{LocalCluster, LoopbackCluster, LoopbackConfig, TxClient};
use mahimahi_sim::LatencyStats;
use mahimahi_telemetry::{Stage, StageSnapshot};
use mahimahi_types::{Decode, Encode, Envelope, TestCommittee, Transaction, TxReceipt, TxVerdict};
use std::collections::HashMap;
use std::io::Write;

const NODES: usize = 4;
const LINK_DELAY: Time = time::from_millis(30);
const INCLUSION_WAIT: Time = time::from_millis(20);
/// Client submission quantum (matches the simulator's batch interval).
const BATCH_INTERVAL: Time = time::from_millis(5);

struct Args {
    tcp: bool,
    quick: bool,
    rate_per_validator: u64,
    tx_bytes: usize,
    duration_s: u64,
    capacity: usize,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().collect();
    let flag = |name: &str| argv.iter().any(|arg| arg == name);
    let value = |name: &str| {
        argv.iter()
            .position(|arg| arg == name)
            .and_then(|at| argv.get(at + 1))
            .and_then(|raw| raw.parse::<u64>().ok())
    };
    let quick = flag("--quick");
    Args {
        tcp: flag("--tcp"),
        quick,
        rate_per_validator: value("--rate").unwrap_or(27_000),
        tx_bytes: value("--tx-bytes").unwrap_or(Transaction::BENCHMARK_SIZE as u64) as usize,
        duration_s: value("--duration-s").unwrap_or(if quick { 6 } else { 20 }),
        capacity: value("--capacity").unwrap_or(50_000) as usize,
    }
}

/// A transaction whose prefix encodes a globally unique id, padded to the
/// configured payload size.
fn load_tx(id: u64, tx_bytes: usize) -> Transaction {
    let mut payload = vec![0u8; tx_bytes.max(8)];
    payload[..8].copy_from_slice(&id.to_le_bytes());
    Transaction::new(payload)
}

struct PhaseReport {
    offered_tps: u64,
    committed: u64,
    throughput_tps: f64,
    latency: LatencyStats,
    /// Commit-path stage histograms merged across the cluster's
    /// validators, when the phase collects them.
    stages: Option<StageSnapshot>,
    peak_occupancy: u64,
    capacity: u64,
    rejected_full: u64,
    violations: Vec<String>,
}

impl PhaseReport {
    fn print(&self, title: &str) {
        let latency = self.latency.snapshot();
        println!(
            "{title}: offered={:>6} tps | committed={:>8} | tput={:>8.0} tps | \
             lat p50={:>6.3}s p99={:>6.3}s max={:>6.3}s | peak mempool={}/{} | full-rejects={}",
            self.offered_tps,
            self.committed,
            self.throughput_tps,
            latency.p50_s(),
            latency.p99_s(),
            latency.max_s(),
            self.peak_occupancy,
            self.capacity,
            self.rejected_full,
        );
        if let Some(stages) = &self.stages {
            for stage in Stage::ALL {
                let histogram = stages.stage(stage);
                println!(
                    "  stage {:<16} count={:>8} | p50={:>9.6}s p99={:>9.6}s",
                    stage.name(),
                    histogram.count(),
                    histogram.p50_s(),
                    histogram.p99_s(),
                );
            }
            println!(
                "  stage p99 sum {:>6.3}s vs end-to-end p99 {:>6.3}s",
                stages.p99_sum_s(),
                latency.p99_s(),
            );
        }
        for violation in &self.violations {
            println!("  ✗ {violation}");
        }
    }

    fn json(&self, phase: &str) -> String {
        let latency = self.latency.snapshot();
        let stages = self
            .stages
            .as_ref()
            .map(|stages| {
                let entries: Vec<String> = Stage::ALL
                    .iter()
                    .map(|&stage| {
                        let histogram = stages.stage(stage);
                        format!(
                            "\"{}\":{{\"count\":{},\"p50_s\":{:.6},\"p99_s\":{:.6}}}",
                            stage.name(),
                            histogram.count(),
                            histogram.p50_s(),
                            histogram.p99_s(),
                        )
                    })
                    .collect();
                format!(
                    ",\"stage_p99_sum_s\":{:.6},\"stages\":{{{}}}",
                    stages.p99_sum_s(),
                    entries.join(",")
                )
            })
            .unwrap_or_default();
        format!(
            "{{\"phase\":\"{phase}\",\"offered_tps\":{},\"committed\":{},\
             \"throughput_tps\":{:.1},\"latency_p50_s\":{:.4},\"latency_p99_s\":{:.4},\
             \"peak_occupancy\":{},\"capacity\":{},\"rejected_full\":{}{stages},\"pass\":{}}}",
            self.offered_tps,
            self.committed,
            self.throughput_tps,
            latency.p50_s(),
            latency.p99_s(),
            self.peak_occupancy,
            self.capacity,
            self.rejected_full,
            self.violations.is_empty(),
        )
    }
}

/// The stage-decomposition gates: every commit-path stage histogram must
/// hold samples, and the per-stage p99 sum must land within a factor of
/// two of the measured end-to-end p99 (the decomposition accounts for the
/// latency rather than mislabeling it).
fn check_stage_decomposition(stages: &StageSnapshot, e2e_p99_s: f64, violations: &mut Vec<String>) {
    if !stages.all_stages_populated() {
        let missing: Vec<&str> = Stage::ALL
            .iter()
            .filter(|&&stage| stages.stage(stage).is_empty())
            .map(|&stage| stage.name())
            .collect();
        violations.push(format!(
            "commit-path stages with empty histograms: {}",
            missing.join(", ")
        ));
    }
    let p99_sum = stages.p99_sum_s();
    if e2e_p99_s > 0.0 && !(0.5 * e2e_p99_s..=2.0 * e2e_p99_s).contains(&p99_sum) {
        violations.push(format!(
            "stage p99 sum {p99_sum:.3}s outside [0.5x, 2x] of the \
             end-to-end p99 {e2e_p99_s:.3}s"
        ));
    }
}

/// The sustained-load phase on the deterministic loopback cluster.
fn loopback_load_phase(args: &Args) -> PhaseReport {
    let mut cluster = LoopbackCluster::new(LoopbackConfig {
        nodes: NODES,
        seed: 0x10ad,
        options: CommitterOptions::mahi_mahi_5(2),
        link_delay: LINK_DELAY,
        inclusion_wait: INCLUSION_WAIT,
        mempool: MempoolConfig {
            capacity_txs: args.capacity,
            ..MempoolConfig::default()
        },
        ingress: IngressConfig::default(),
    });
    let window = time::from_secs(args.duration_s);
    let drain = time::from_secs(2);
    let mut next_id = 0u64;
    let mut submitted_per_validator = 0u64;
    let mut now = 0;
    // Open loop: at every batch boundary, each validator receives the
    // transactions that fell due since the last one (exact-rate clients).
    while now < window {
        let due = (now as u128 * args.rate_per_validator as u128 / time::SECOND as u128) as u64;
        let count = due.saturating_sub(submitted_per_validator);
        submitted_per_validator = due;
        for validator in 0..NODES {
            if count > 0 {
                let batch: Vec<Transaction> = (0..count)
                    .map(|_| {
                        next_id += 1;
                        load_tx(next_id, args.tx_bytes)
                    })
                    .collect();
                cluster.submit_batch(validator, batch);
            }
        }
        cluster.run_until(now);
        now += BATCH_INTERVAL;
    }
    // Drain: let in-flight payloads commit.
    cluster.run_until(window + drain);

    let mut latency = LatencyStats::default();
    let mut committed = 0u64;
    let mut peak_occupancy = 0u64;
    let mut rejected_full = 0u64;
    let mut last_commit: Time = 0;
    let mut violations = Vec::new();
    for validator in 0..NODES {
        for &(at, tag) in cluster.tx_commits(validator) {
            // Tags are engine receive times; the client submitted one link
            // delay earlier.
            latency.record(at - tag + LINK_DELAY);
            last_commit = last_commit.max(at);
        }
        let integrity = cluster.engine(validator).tx_integrity();
        committed += integrity.own_committed;
        peak_occupancy = peak_occupancy.max(integrity.peak_occupancy_txs);
        rejected_full += integrity.rejected_full;
        violations.extend(
            integrity
                .violations()
                .into_iter()
                .map(|violation| format!("validator {validator}: {violation}")),
        );
    }
    if latency.is_empty() {
        violations.push("empty commit-latency histogram".into());
    }
    let throughput_tps = if last_commit > 0 {
        committed as f64 / time::as_secs_f64(last_commit)
    } else {
        0.0
    };
    let offered = args.rate_per_validator * NODES as u64;
    if throughput_tps < 0.8 * offered as f64 {
        violations.push(format!(
            "sustained throughput {throughput_tps:.0} tps below 80% of the offered {offered} tps"
        ));
    }
    // The verify/apply-split throughput gate: at 100k offered, the
    // cluster must sustain six figures with a bounded tail.
    if offered >= 100_000 {
        if throughput_tps < 100_000.0 {
            violations.push(format!(
                "sustained throughput {throughput_tps:.0} tps below the 100k gate"
            ));
        }
        let p99 = latency.snapshot().p99_s();
        if p99 > 0.5 {
            violations.push(format!(
                "commit-latency p99 {p99:.3}s above the 500 ms gate"
            ));
        }
    }
    // The stage decomposition merged across validators must populate
    // every histogram and account for the end-to-end tail.
    let mut stages = StageSnapshot::default();
    for validator in 0..NODES {
        stages.merge(&cluster.stage_snapshot(validator));
    }
    check_stage_decomposition(&stages, latency.snapshot().p99_s(), &mut violations);
    PhaseReport {
        offered_tps: offered,
        committed,
        throughput_tps,
        latency,
        stages: Some(stages),
        peak_occupancy,
        capacity: args.capacity as u64,
        rejected_full,
        violations,
    }
}

/// The saturation phase: a burst several times the pool capacity must be
/// answered with `Full` rejections and a bounded pool.
fn loopback_saturation_phase() -> PhaseReport {
    const CAPACITY: usize = 1_000;
    const BURST: u64 = 5_000;
    let mut cluster = LoopbackCluster::new(LoopbackConfig {
        nodes: NODES,
        seed: 0x5a7,
        options: CommitterOptions::mahi_mahi_5(2),
        link_delay: LINK_DELAY,
        inclusion_wait: INCLUSION_WAIT,
        mempool: MempoolConfig {
            capacity_txs: CAPACITY,
            ..MempoolConfig::default()
        },
        ingress: IngressConfig::default(),
    });
    // One burst of 5× capacity, split into codec-sized batches, all
    // arriving at the same instant at validator 0.
    let mut offset = 0u64;
    while offset < BURST {
        let batch: Vec<Transaction> = (offset..(offset + 2_500).min(BURST))
            .map(|id| load_tx(0xbeef_0000_0000 + id, 64))
            .collect();
        offset += batch.len() as u64;
        cluster.submit_batch(0, batch);
    }
    cluster.run_until(time::from_secs(5));

    let integrity = cluster.engine(0).tx_integrity();
    let mut latency = LatencyStats::default();
    for &(at, tag) in cluster.tx_commits(0) {
        latency.record(at - tag + LINK_DELAY);
    }
    let mut violations = integrity.violations();
    if integrity.rejected_full == 0 {
        violations.push(format!(
            "saturation burst of {BURST} into capacity {CAPACITY} produced no Full rejections"
        ));
    }
    let engine_rejections =
        integrity.rejected_duplicate + integrity.rejected_full + integrity.rejected_rate_limited;
    if cluster.rejections(0) != engine_rejections {
        violations.push(format!(
            "driver saw {} rejections (TxRejected outputs + receipt verdicts), \
             engine counted {engine_rejections}",
            cluster.rejections(0),
        ));
    }
    // Receipt coverage under saturation: the bursts arrived as wire
    // batches, so every one of them owes the client an admission receipt
    // even when the pool sheds its payload.
    let ingress = cluster.ingress_report(0);
    violations.extend(ingress.violations());
    PhaseReport {
        offered_tps: 0,
        committed: integrity.own_committed,
        throughput_tps: 0.0,
        latency,
        stages: None,
        peak_occupancy: integrity.peak_occupancy_txs,
        capacity: CAPACITY as u64,
        rejected_full: integrity.rejected_full,
        violations,
    }
}

/// Fairness report: hundreds of rate-limited Zipf clients against one
/// validator.
struct FairnessReport {
    clients: u64,
    compliant: u64,
    batches: u64,
    admissions: u64,
    accepted: u64,
    rate_limited: u64,
    fairness_ratio: f64,
    violations: Vec<String>,
}

impl FairnessReport {
    fn print(&self) {
        println!(
            "fairness  : clients={:>4} ({} compliant) | batches={:>6} | receipts={:>6} | \
             accepted={:>6} | rate-limited={:>6} | min/max ratio={:.3}",
            self.clients,
            self.compliant,
            self.batches,
            self.admissions,
            self.accepted,
            self.rate_limited,
            self.fairness_ratio,
        );
        for violation in &self.violations {
            println!("  ✗ {violation}");
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"phase\":\"fairness\",\"clients\":{},\"compliant\":{},\"batches\":{},\
             \"admission_receipts\":{},\"accepted\":{},\"rate_limited\":{},\
             \"fairness_ratio\":{:.4},\"pass\":{}}}",
            self.clients,
            self.compliant,
            self.batches,
            self.admissions,
            self.accepted,
            self.rate_limited,
            self.fairness_ratio,
            self.violations.is_empty(),
        )
    }
}

/// The multi-client fairness phase: ≥500 concurrent clients with
/// Zipf-skewed offered load (client `i` demands `∝ 1/(i+1)`) all hitting
/// validator 0 with per-client rate limiting on. Hard gates:
///
/// - **zero receipt loss** — every submitted batch is answered by exactly
///   one admission receipt, and the engine's ingress ledger agrees;
/// - **fairness** — among *compliant* clients (offered rate within the
///   limit), the min/max ratio of per-client accepted throughput
///   (normalized by each client's offered load) is ≥ 0.5: the limiter
///   sheds the heavy hitters, never the well-behaved tail.
fn loopback_fairness_phase(quick: bool) -> FairnessReport {
    const CLIENTS: usize = 600;
    /// Per-client sustained admission limit (tx/s of engine time).
    const RATE_LIMIT: u64 = 10;
    const BURST: u64 = 20;
    /// The heaviest client's demand; client `i` demands `TOP / (i+1)`.
    const TOP_DEMAND: f64 = 800.0;
    let window = time::from_secs(if quick { 3 } else { 6 });
    let interval = time::from_millis(50);

    let mut cluster = LoopbackCluster::new(LoopbackConfig {
        nodes: NODES,
        seed: 0xfa17,
        options: CommitterOptions::mahi_mahi_5(2),
        link_delay: LINK_DELAY,
        inclusion_wait: INCLUSION_WAIT,
        mempool: MempoolConfig {
            capacity_txs: 50_000,
            ..MempoolConfig::default()
        },
        ingress: IngressConfig {
            rate_limit_per_client: RATE_LIMIT,
            burst_per_client: BURST,
            ..IngressConfig::default()
        },
    });
    // Client ids start above the committee: external, rate-limited range.
    let client_id = |client: usize| NODES + client;
    let demand = |client: usize| TOP_DEMAND / (client + 1) as f64;
    let mut submitted_txs = vec![0u64; CLIENTS];
    let mut submitted_batches = vec![0u64; CLIENTS];
    let mut next_id = 0u64;
    let mut now = 0;
    while now < window {
        for client in 0..CLIENTS {
            let due = (demand(client) * time::as_secs_f64(now)) as u64;
            let count = due.saturating_sub(submitted_txs[client]);
            if count == 0 {
                continue;
            }
            submitted_txs[client] += count;
            submitted_batches[client] += 1;
            let batch: Vec<Transaction> = (0..count)
                .map(|_| {
                    next_id += 1;
                    load_tx(0xfa17_0000_0000 + next_id, 64)
                })
                .collect();
            cluster.submit_batch_as(0, client_id(client), batch);
        }
        cluster.run_until(now);
        now += interval;
    }
    cluster.run_until(window + time::from_secs(2));

    // Tally the receipts validator 0 addressed to each client.
    let mut admissions = vec![0u64; CLIENTS];
    let mut accepted = vec![0u64; CLIENTS];
    for (peer, receipt) in cluster.receipts(0) {
        let Some(client) = peer.checked_sub(NODES).filter(|&c| c < CLIENTS) else {
            continue;
        };
        if let TxReceipt::Admission { verdicts, .. } = receipt {
            admissions[client] += 1;
            accepted[client] += verdicts
                .iter()
                .filter(|verdict| matches!(verdict, TxVerdict::Accepted))
                .count() as u64;
        }
    }

    let mut violations = Vec::new();
    // Gate 1: zero receipt loss, per client and in the engine's ledger.
    for client in 0..CLIENTS {
        if admissions[client] != submitted_batches[client] {
            violations.push(format!(
                "client {client}: {} batches submitted but {} admission receipts",
                submitted_batches[client], admissions[client]
            ));
        }
    }
    let report = cluster.ingress_report(0);
    violations.extend(report.violations());
    // Gate 2: fairness among compliant clients — accepted throughput
    // normalized by offered load, min/max ≥ 0.5.
    let compliant: Vec<usize> = (0..CLIENTS)
        .filter(|&client| demand(client) <= RATE_LIMIT as f64 && submitted_txs[client] > 0)
        .collect();
    let fractions: Vec<f64> = compliant
        .iter()
        .map(|&client| accepted[client] as f64 / submitted_txs[client] as f64)
        .collect();
    let min = fractions.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = fractions.iter().cloned().fold(0.0, f64::max);
    let fairness_ratio = if max > 0.0 { min / max } else { 0.0 };
    if compliant.len() < 500 {
        violations.push(format!(
            "only {} compliant clients active; the gate requires ≥500 concurrent clients",
            compliant.len()
        ));
    }
    if fairness_ratio < 0.5 {
        violations.push(format!(
            "fairness ratio {fairness_ratio:.3} below the 0.5 gate \
             (a compliant client was starved)"
        ));
    }
    if report.rate_limited == 0 {
        violations.push("rate limiter never engaged — the phase offered no overload".into());
    }
    FairnessReport {
        clients: CLIENTS as u64,
        compliant: compliant.len() as u64,
        batches: submitted_batches.iter().sum(),
        admissions: admissions.iter().sum(),
        accepted: accepted.iter().sum(),
        rate_limited: report.rate_limited,
        fairness_ratio,
        violations,
    }
}

/// Verify-stage report: the admission pipeline driven standalone over
/// signed block frames (wall-clock, parallel workers).
struct VerifyReport {
    frames: u64,
    verified: u64,
    rejected: u64,
    peak_depth: u64,
    throughput_fps: f64,
    violations: Vec<String>,
}

impl VerifyReport {
    fn print(&self) {
        println!(
            "verify    : frames={:>7} | verified={:>7} | rejected={:>5} | \
             peak depth={:>5} | tput={:>8.0} frames/s",
            self.frames, self.verified, self.rejected, self.peak_depth, self.throughput_fps,
        );
        for violation in &self.violations {
            println!("  ✗ {violation}");
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"phase\":\"verify\",\"frames\":{},\"verified\":{},\"rejected\":{},\
             \"peak_depth\":{},\"throughput_fps\":{:.1},\"pass\":{}}}",
            self.frames,
            self.verified,
            self.rejected,
            self.peak_depth,
            self.throughput_fps,
            self.violations.is_empty(),
        )
    }
}

/// Pushes signed block frames (every 16th one tampered) through a
/// parallel [`AdmissionPipeline`] and measures frame throughput and the
/// queue-depth high-water mark. The pipeline must keep submission order,
/// admit exactly the valid frames, and attribute every tampered one.
fn verify_stage_phase(quick: bool) -> VerifyReport {
    const WORKERS: usize = 4;
    let rounds = if quick { 64 } else { 256 };
    let setup = TestCommittee::new(NODES, 0xfee1);
    let mut dag = DagBuilder::new(setup.clone());
    dag.add_full_rounds(rounds);
    let blocks: Vec<_> = dag
        .store()
        .iter()
        .filter(|block| block.round() > 0)
        .cloned()
        .collect();
    let frames: Vec<(bool, Vec<u8>)> = blocks
        .iter()
        .enumerate()
        .map(|(index, block)| {
            let mut bytes = Envelope::Block(block.clone()).to_bytes_vec();
            let tampered = index % 16 == 3;
            if tampered {
                // Flip a parent-digest byte: the frame still decodes, but
                // the signature no longer covers the content.
                bytes[31] ^= 0xff;
            }
            (tampered, bytes)
        })
        .collect();
    let expected_rejected = frames.iter().filter(|(tampered, _)| *tampered).count() as u64;

    let mut pipeline = AdmissionPipeline::new(
        AdmissionConfig {
            verify_workers: WORKERS,
            queue_bound: 4096,
        },
        setup.committee().clone(),
    );
    let started = std::time::Instant::now();
    for (_, bytes) in &frames {
        pipeline.submit_frame(0, bytes.clone());
    }
    let admitted = pipeline.flush();
    let elapsed = started.elapsed().as_secs_f64();

    let mut violations = Vec::new();
    let expected_order: Vec<_> = frames
        .iter()
        .filter(|(tampered, _)| !tampered)
        .map(|(_, bytes)| match Envelope::from_bytes_exact(bytes) {
            Ok(Envelope::Block(block)) => block.digest(),
            _ => unreachable!("untampered frames decode"),
        })
        .collect();
    let admitted_order: Vec<_> = admitted
        .iter()
        .filter_map(|input| match &**input {
            Input::BlockReceived { block, .. } => Some(block.digest()),
            _ => None,
        })
        .collect();
    if admitted_order != expected_order {
        violations.push("verified frames did not emerge in submission order".into());
    }
    if pipeline.rejected() != expected_rejected {
        violations.push(format!(
            "expected {expected_rejected} rejected frames, pipeline counted {}",
            pipeline.rejected()
        ));
    }
    if pipeline.peak_depth() == 0 {
        violations.push("verify queue depth gauge never moved".into());
    }
    VerifyReport {
        frames: frames.len() as u64,
        verified: pipeline.verified(),
        rejected: pipeline.rejected(),
        peak_depth: pipeline.peak_depth() as u64,
        throughput_fps: frames.len() as f64 / elapsed,
        violations,
    }
}

/// Wall-clock load against real TCP nodes through `TxClient` connections.
fn tcp_load_phase(args: &Args) -> PhaseReport {
    use std::time::{Duration, Instant};
    let cluster = LocalCluster::start(NODES, 0x7cb).expect("cluster starts");
    let mut clients: Vec<TxClient> = (0..NODES)
        .map(|validator| TxClient::connect(cluster.address(validator)).expect("client connects"))
        .collect();
    let started = Instant::now();
    let window = Duration::from_secs(args.duration_s);
    let mut submitted_at: HashMap<u64, Instant> = HashMap::new();
    let mut next_id = 0u64;
    let mut per_validator_due = 0u64;
    let mut latency = LatencyStats::default();
    let mut committed = 0u64;
    // Observe commits as they land (timestamping at receipt), while
    // submitting the open-loop schedule.
    let observe =
        |latency: &mut LatencyStats, committed: &mut u64, submitted_at: &HashMap<u64, Instant>| {
            while let Ok(sub_dag) = cluster.commits(0).try_recv() {
                let now = Instant::now();
                for block in &sub_dag.blocks {
                    for tx in block.transactions() {
                        if let Some(at) = tx.benchmark_id().and_then(|id| submitted_at.get(&id)) {
                            *committed += 1;
                            latency.record(now.duration_since(*at).as_micros() as Time);
                        }
                    }
                }
            }
        };
    while started.elapsed() < window {
        let due = (started.elapsed().as_micros() * args.rate_per_validator as u128 / 1_000_000u128)
            as u64;
        let count = due.saturating_sub(per_validator_due);
        per_validator_due = due;
        if count > 0 {
            let now = Instant::now();
            for client in clients.iter_mut() {
                let batch: Vec<Transaction> = (0..count)
                    .map(|_| {
                        next_id += 1;
                        submitted_at.insert(next_id, now);
                        load_tx(next_id, args.tx_bytes)
                    })
                    .collect();
                let _ = client.submit(&batch);
            }
        }
        observe(&mut latency, &mut committed, &submitted_at);
        std::thread::sleep(Duration::from_millis(5));
    }
    // Drain the in-flight tail.
    let drain_deadline = Instant::now() + Duration::from_secs(5);
    while committed < next_id && Instant::now() < drain_deadline {
        observe(&mut latency, &mut committed, &submitted_at);
        std::thread::sleep(Duration::from_millis(20));
    }
    let mut peak = 0;
    let mut rejected_full = 0;
    let mut verify_peak_depth = 0;
    let mut verify_verified = 0;
    let mut verify_rejected = 0;
    let mut stages = StageSnapshot::default();
    for validator in 0..NODES {
        let metrics = cluster.handle(validator).metrics();
        peak = peak.max(metrics.peak_occupancy());
        rejected_full += metrics.rejected_full();
        verify_peak_depth = verify_peak_depth.max(metrics.verify_peak_depth());
        verify_verified += metrics.verified();
        verify_rejected += metrics.rejected();
        stages.merge(&metrics.stage_snapshot());
    }
    cluster.stop();
    println!(
        "tcp verify: verified={verify_verified} | rejected={verify_rejected} | \
         peak depth={verify_peak_depth}"
    );
    let mut violations = Vec::new();
    if latency.is_empty() {
        violations.push("empty commit-latency histogram (tcp)".into());
    }
    if verify_verified == 0 {
        violations.push("verify stage admitted no inputs (tcp)".into());
    }
    if verify_rejected > 0 {
        violations.push(format!(
            "verify stage rejected {verify_rejected} inputs from honest peers (tcp)"
        ));
    }
    if !stages.all_stages_populated() {
        violations.push("commit-path stage histograms left empty (tcp)".into());
    }
    PhaseReport {
        offered_tps: args.rate_per_validator * NODES as u64,
        committed,
        throughput_tps: committed as f64 / started.elapsed().as_secs_f64(),
        latency,
        stages: Some(stages),
        peak_occupancy: peak,
        capacity: u64::MAX,
        rejected_full,
        violations,
    }
}

fn main() {
    let args = parse_args();
    bench::banner(
        "Client-ingress load generator",
        "the bounded mempool sustains the offered load with backpressure \
         instead of unbounded queues: no transaction lost or duplicated, \
         occupancy within capacity, Full rejections under saturation",
    );

    let mut reports = Vec::new();
    let mut verify_report = None;
    let mut fairness_report = None;
    if args.tcp {
        let report = tcp_load_phase(&args);
        report.print("tcp-load  ");
        reports.push(("tcp-load", report));
    } else {
        let report = loopback_load_phase(&args);
        report.print("load      ");
        reports.push(("load", report));
        let report = loopback_saturation_phase();
        report.print("saturation");
        reports.push(("saturation", report));
        let report = loopback_fairness_phase(args.quick);
        report.print();
        fairness_report = Some(report);
        let report = verify_stage_phase(args.quick);
        report.print();
        verify_report = Some(report);
    }

    let mut rows: Vec<String> = reports
        .iter()
        .map(|(phase, report)| report.json(phase))
        .collect();
    if let Some(report) = &fairness_report {
        rows.push(report.json());
    }
    if let Some(report) = &verify_report {
        rows.push(report.json());
    }
    let path = bench::results_dir().join("load.json");
    let mut file = std::fs::File::create(&path).expect("create json report");
    writeln!(
        file,
        "{{\n  \"suite\": \"load\",\n  \"phases\": [\n    {}\n  ]\n}}",
        rows.join(",\n    ")
    )
    .expect("write json report");
    println!("\n→ wrote {}", path.display());

    let failed: usize = reports
        .iter()
        .map(|(_, report)| report.violations.len())
        .sum::<usize>()
        + fairness_report
            .as_ref()
            .map_or(0, |report| report.violations.len())
        + verify_report
            .as_ref()
            .map_or(0, |report| report.violations.len());
    if failed > 0 {
        println!("{failed} violation(s)");
        std::process::exit(1);
    }
}
