//! Figure 4: performance under crash faults.
//!
//! WAN, 10 validators of which 3 are crashed (the maximum `f`). Validates
//! claim C3: Mahi-Mahi keeps ~2× lower latency than Cordial Miners thanks
//! to the direct skip rule; Tusk's latency explodes.

use bench::{banner, paper_systems, quick_flag, run_sweep, write_csv, Sweep};

fn main() {
    let quick = quick_flag();
    banner(
        "Figure 4 — 10 validators, 3 crash faults",
        "C3: MM ≈ 50% lower latency than Cordial Miners under faults; \
         Tusk degrades to multi-second commits",
    );
    let mut sweep = Sweep::standard(10, 3, quick);
    if !quick {
        sweep.total_loads_tps = vec![1_000, 5_000, 10_000, 20_000, 35_000];
    }
    let mut all = Vec::new();
    for protocol in paper_systems() {
        all.extend(run_sweep(protocol, &sweep));
    }
    write_csv("fig4", &all);
}
