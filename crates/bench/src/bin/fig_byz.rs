//! Extension experiment (beyond the paper): the latency impact of *active*
//! Byzantine behaviour — equivocating and mute validators — on Mahi-Mahi.
//!
//! The paper notes that benchmarking under Byzantine faults is an open
//! problem (Section 5) and evaluates crash faults only; this harness
//! measures the two misbehaviours the uncertified DAG must absorb.

use bench::{banner, quick_flag, write_csv};
use mahimahi_net::time;
use mahimahi_sim::{Behavior, ProtocolChoice, SimConfig, Simulation};

fn main() {
    let quick = quick_flag();
    banner(
        "Byzantine extension — equivocators and mute validators (n = 10)",
        "not in the paper: quantifies the commit rule's equivocation cost",
    );
    let scenarios: Vec<(&str, Vec<(usize, Behavior)>)> = vec![
        ("honest", vec![]),
        ("1 equivocator", vec![(9, Behavior::Equivocator)]),
        (
            "3 equivocators",
            vec![
                (7, Behavior::Equivocator),
                (8, Behavior::Equivocator),
                (9, Behavior::Equivocator),
            ],
        ),
        ("1 mute", vec![(9, Behavior::Mute)]),
        (
            "3 mute",
            vec![
                (7, Behavior::Mute),
                (8, Behavior::Mute),
                (9, Behavior::Mute),
            ],
        ),
    ];
    let mut all = Vec::new();
    for (label, behaviors) in scenarios {
        let config = SimConfig {
            protocol: ProtocolChoice::MahiMahi5 { leaders: 2 },
            committee_size: 10,
            behaviors,
            duration: time::from_secs(if quick { 5 } else { 10 }),
            txs_per_second_per_validator: 1_000,
            seed: 99,
            ..SimConfig::default()
        };
        let report = Simulation::new(config).run();
        println!("{label:<16} {}", report.table_row());
        all.push(report);
    }
    write_csv("fig_byz", &all);
}
