//! Extension: find the saturation knee (the paper's "maximal throughput
//! after which latency grows quickly", Section 5.1).
//!
//! Pushes the 10-validator configuration beyond the paper's load axis until
//! block capacity (2,000 txs/block × round rate) is exceeded and queueing
//! delay dominates.

use bench::{banner, quick_flag, run_sweep, write_csv, Sweep};
use mahimahi_net::time;
use mahimahi_sim::ProtocolChoice;

fn main() {
    let quick = quick_flag();
    banner(
        "Saturation — 10 validators, loads beyond the paper's axis",
        "latency stays flat until block capacity, then queueing dominates",
    );
    let sweep = Sweep {
        committee_size: 10,
        crashed: 0,
        total_loads_tps: if quick {
            vec![50_000, 200_000]
        } else {
            vec![50_000, 100_000, 140_000, 170_000, 200_000]
        },
        duration: time::from_secs(if quick { 5 } else { 10 }),
        seed: 2024,
    };
    let mut all = Vec::new();
    for protocol in [
        ProtocolChoice::MahiMahi4 { leaders: 2 },
        ProtocolChoice::MahiMahi5 { leaders: 2 },
        ProtocolChoice::CordialMiners,
    ] {
        all.extend(run_sweep(protocol, &sweep));
    }
    write_csv("saturation", &all);
}
