//! Direct-commit probability: analytic formulas (Lemmas 13, 16, 17) versus
//! Monte-Carlo measurement on simulated random-network DAGs.
//!
//! Two comparisons:
//!
//! 1. the hypergeometric slot-election formulas themselves, cross-checked
//!    by uniform sampling;
//! 2. the *implementation*: DAGs built under the random network model
//!    (every block references its own previous block plus a uniformly
//!    random quorum), decided by the real coin and the real decision rules;
//!    the measured per-round direct-commit rate must dominate the analytic
//!    lower bound.

use mahimahi_analysis as analysis;
use mahimahi_crypto::coin::CoinShare;
use mahimahi_dag::{BlockSpec, DagBuilder};
use mahimahi_types::{AuthorityIndex, Slot, TestCommittee};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let trials = if quick { 200 } else { 2_000 };

    println!("\n=== Lemma 13/16 closed forms vs uniform sampling ===");
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    for f in [1u64, 3] {
        let n = 3 * f + 1;
        for leaders in 1..=(f + 1) {
            let analytic = analysis::direct_commit_probability_w5(f, leaders);
            // Sample: 2f+1 committable blocks out of n; ℓ uniform slots.
            let mut hits = 0usize;
            for _ in 0..trials * 10 {
                let mut indexes: Vec<u64> = (0..n).collect();
                indexes.shuffle(&mut rng);
                let committable: Vec<u64> = indexes[..(2 * f + 1) as usize].to_vec();
                let mut slots: Vec<u64> = (0..n).collect();
                slots.shuffle(&mut rng);
                if slots[..leaders as usize]
                    .iter()
                    .any(|slot| committable.contains(slot))
                {
                    hits += 1;
                }
            }
            let measured = hits as f64 / (trials * 10) as f64;
            println!(
                "w=5 f={f} ℓ={leaders}: analytic={analytic:.4} sampled={measured:.4} (Δ={:+.4})",
                measured - analytic
            );
            assert!((measured - analytic).abs() < 0.03, "formula mismatch");
        }
    }

    println!("\n=== Implementation under the random network model ===");
    for (wave_length, label) in [(5u64, "w=5"), (4, "w=4")] {
        for committee_size in [4usize, 10] {
            let f = (committee_size - 1) / 3;
            let quorum = 2 * f + 1;
            let setup = TestCommittee::new(committee_size, 7 + wave_length);
            let committee = setup.committee().clone();
            let mut dag = DagBuilder::new(setup);
            let rounds = if quick { 60 } else { 200 };
            let mut rng = ChaCha8Rng::seed_from_u64(wave_length ^ committee_size as u64);
            for _ in 0..rounds {
                let specs = (0..committee_size as u32)
                    .map(|author| {
                        // Random network model: own block + a uniformly
                        // random 2f quorum of the others.
                        let mut others: Vec<u32> = (0..committee_size as u32)
                            .filter(|&a| a != author)
                            .collect();
                        others.shuffle(&mut rng);
                        others.truncate(quorum - 1);
                        BlockSpec::new(author).with_parent_authors(others.to_vec())
                    })
                    .collect();
                dag.add_round(specs);
            }
            let store = dag.store();

            // For every decidable propose round, elect ℓ = 2 slots with the
            // real coin and test the direct-commit rule.
            let leaders = 2usize;
            let mut rounds_with_direct = 0usize;
            let mut slots_direct = 0usize;
            let mut total_rounds = 0usize;
            for propose in 1..=(rounds as u64 - (wave_length - 1)) {
                let certify = propose + wave_length - 1;
                let mut shares: Vec<CoinShare> = Vec::new();
                let mut seen = std::collections::HashSet::new();
                for block in store.blocks_at_round(certify) {
                    if let Some(share) = block.coin_share() {
                        if seen.insert(share.index()) {
                            shares.push(*share);
                        }
                    }
                }
                let Ok(coin) = committee.coin_public().combine(certify, &shares) else {
                    continue;
                };
                total_rounds += 1;
                let mut any = false;
                for offset in 0..leaders {
                    let authority = AuthorityIndex(coin.leader_slot(offset, committee_size) as u32);
                    let slot = Slot::new(propose, authority);
                    let direct = store.blocks_in_slot(slot).iter().any(|candidate| {
                        store
                            .authorities_with(certify, |block| store.is_cert(block, candidate))
                            .len()
                            >= quorum
                    });
                    if direct {
                        slots_direct += 1;
                        any = true;
                    }
                }
                if any {
                    rounds_with_direct += 1;
                }
            }
            let measured = rounds_with_direct as f64 / total_rounds as f64;
            let bound = if wave_length == 5 {
                analysis::direct_commit_probability_w5(f as u64, leaders as u64)
            } else {
                analysis::direct_commit_probability_w4_async(f as u64, leaders as u64)
            };
            println!(
                "{label} n={committee_size}: measured round-rate={measured:.3} \
                 (slot-rate={:.3}) ≥ analytic bound {bound:.3}  [Lemma 17 bound: {:.2e}]",
                slots_direct as f64 / (total_rounds * leaders) as f64,
                analysis::w4_random_unreachable_bound(f as u64),
            );
            assert!(
                measured + 0.02 >= bound,
                "{label} n={committee_size}: measured {measured} below bound {bound}"
            );
        }
    }
    println!("\nAll analytic bounds hold. ✔");
    // Keep rng used under --quick paths.
    let _: u8 = ChaCha8Rng::seed_from_u64(0).gen();
}
