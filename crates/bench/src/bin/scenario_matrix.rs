//! Scenario conformance matrix: protocol × behavior × adversary sweep with
//! oracle verdicts, emitted as a machine-readable JSON report.
//!
//! Runs the full 192-cell matrix (`--quick` runs the 12-cell covering smoke
//! subset) and writes `bench-results/scenario_matrix.json`. Exits non-zero
//! if any oracle fails, so the binary doubles as a regression gate.

use mahimahi_scenarios::{full_matrix, report_json, run_scenario, smoke_matrix};
use std::io::Write;

fn main() {
    let quick = bench::quick_flag();
    bench::banner(
        "Scenario conformance matrix",
        "safety (agreement, one block per slot), bounded commit lag, \
         liveness, and exact equivocator attribution hold for every \
         protocol × behavior × adversary cell",
    );
    let scenarios = if quick { smoke_matrix() } else { full_matrix() };
    let mut results = Vec::with_capacity(scenarios.len());
    for scenario in &scenarios {
        let result = run_scenario(scenario);
        let verdict = if result.pass() { "ok " } else { "FAIL" };
        let culprits = if result.culprits.iter().any(|set| !set.is_empty()) {
            format!(" culprits={:?}", result.culprits)
        } else {
            String::new()
        };
        println!(
            "[{verdict}] {:<55} seed={:<6} commits={:<4} skips={:<3} rounds={:<4} \
             lag_bound={} p99={:.2}s/{:.2}s{culprits}",
            result.name,
            result.seed,
            result.committed_slots,
            result.skipped_slots,
            result.highest_round,
            result.lag_bound_rounds,
            result.latency_p99_s,
            result.p99_bound_s,
        );
        for failure in result.failures() {
            println!("       ↳ {failure}");
        }
        results.push(result);
    }

    let failed = results.iter().filter(|result| !result.pass()).count();
    let path = bench::results_dir().join("scenario_matrix.json");
    let mut file = std::fs::File::create(&path).expect("create json report");
    file.write_all(report_json(&results).as_bytes())
        .expect("write json report");
    println!(
        "\n{} scenarios, {failed} failed → wrote {}",
        results.len(),
        path.display()
    );
    if failed > 0 {
        std::process::exit(1);
    }
}
