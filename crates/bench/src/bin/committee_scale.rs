//! Committee-scale baseline and CI gate: measures per-block admission and
//! per-vote quorum tally at n ∈ {4, 10, 50}, writes
//! `bench-results/committee_scale.json`, and exits non-zero if per-block
//! admission at n = 50 exceeds 3× the n = 4 cost (the dense-indexing
//! near-flat-hot-path claim).

use bench::scale::{self, ADMISSION_RATIO_BUDGET};
use std::io::Write;

fn main() {
    bench::banner(
        "Committee-scale hot paths",
        "per-block admission and quorum tally stay near-flat from n = 4 to n = 50",
    );
    let points = scale::measure_all();
    println!(
        "{:>4}  {:>24}  {:>20}",
        "n", "admission (ns/block)", "tally (ns/vote)"
    );
    for point in &points {
        println!(
            "{:>4}  {:>24.1}  {:>20.1}",
            point.committee_size, point.admission_per_block_ns, point.tally_per_vote_ns
        );
    }
    let ratio = scale::admission_ratio(&points);
    println!("\nadmission n=50 / n=4: {ratio:.2}x (budget {ADMISSION_RATIO_BUDGET:.1}x)");

    let path = bench::results_dir().join("committee_scale.json");
    let mut file = std::fs::File::create(&path).expect("create committee_scale.json");
    file.write_all(scale::scale_json(&points).as_bytes())
        .expect("write committee_scale.json");
    println!("→ wrote {}", path.display());

    if ratio > ADMISSION_RATIO_BUDGET {
        eprintln!(
            "FAIL: per-block admission grew {ratio:.2}x from n=4 to n=50 \
             (budget: {ADMISSION_RATIO_BUDGET:.1}x)"
        );
        std::process::exit(1);
    }
    println!("PASS");
}
