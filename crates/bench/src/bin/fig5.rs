//! Figure 5: impact of the number of leader slots per round (Mahi-Mahi-4).
//!
//! WAN, 10 validators, 1–3 leaders, zero and three crash faults. Validates
//! claim C4: latency decreases as leaders go 1 → 3, more so under faults.

use bench::{banner, quick_flag, run_sweep, write_csv, Sweep};
use mahimahi_sim::ProtocolChoice;

fn main() {
    let quick = quick_flag();
    banner(
        "Figure 5 — Mahi-Mahi-4 leaders per round",
        "C4: average latency decreases from 1 to 3 leaders (≈40 ms ideal, \
         ≈100 ms with 3 faults)",
    );
    let mut all = Vec::new();
    for crashed in [0usize, 3] {
        println!("--- {crashed} faults ---");
        let mut sweep = Sweep::standard(10, crashed, quick);
        if !quick {
            sweep.total_loads_tps = vec![1_000, 10_000, 30_000];
        }
        for leaders in [1usize, 2, 3] {
            all.extend(run_sweep(ProtocolChoice::MahiMahi4 { leaders }, &sweep));
        }
    }
    write_csv("fig5", &all);
}
