//! Figure 3: comparative throughput-latency under ideal conditions.
//!
//! WAN, 10 and 50 validators, no faults, 512-byte transactions. Validates
//! claims C1 (Mahi-Mahi matches baseline throughput at lower latency),
//! C2 (scales to 50 validators), and C5 (wave length 4 beats 5).

use bench::{banner, paper_systems, quick_flag, run_sweep, write_csv, Sweep};

fn main() {
    let quick = quick_flag();
    banner(
        "Figure 3 — throughput/latency, ideal conditions",
        "C1: MM ≈ baseline throughput at much lower latency; \
         C2: scales to 50 nodes; C5: MM-4 < MM-5 latency",
    );
    let mut all = Vec::new();
    for committee_size in [10usize, 50] {
        if quick && committee_size == 50 {
            // 50-node points are expensive; --quick runs a single one.
        }
        println!("--- {committee_size} validators ---");
        let mut sweep = Sweep::standard(committee_size, 0, quick);
        if committee_size == 50 {
            // Laptop-scale budget: shorter runs, fewer points at 50 nodes.
            sweep.duration = mahimahi_net::time::from_secs(if quick { 3 } else { 5 });
            sweep.total_loads_tps = if quick {
                vec![5_000]
            } else {
                vec![5_000, 20_000, 50_000, 100_000]
            };
        }
        for protocol in paper_systems() {
            all.extend(run_sweep(protocol, &sweep));
        }
    }
    write_csv("fig3", &all);
}
