//! Figure 7 (Appendix D): leaders per round for Mahi-Mahi-5.
//!
//! Same experiment as Figure 5 with wave length 5: the latency reduction
//! from multiple leaders holds for both configurations.

use bench::{banner, quick_flag, run_sweep, write_csv, Sweep};
use mahimahi_sim::ProtocolChoice;

fn main() {
    let quick = quick_flag();
    banner(
        "Figure 7 — Mahi-Mahi-5 leaders per round",
        "same trend as Figure 5 at wave length 5",
    );
    let mut all = Vec::new();
    for crashed in [0usize, 3] {
        println!("--- {crashed} faults ---");
        let mut sweep = Sweep::standard(10, crashed, quick);
        if !quick {
            sweep.total_loads_tps = vec![1_000, 10_000, 30_000];
        }
        for leaders in [1usize, 2, 3] {
            all.extend(run_sweep(ProtocolChoice::MahiMahi5 { leaders }, &sweep));
        }
    }
    write_csv("fig7", &all);
}
