//! Property tests for the batched verification paths.
//!
//! The admission pipeline's whole soundness argument is that the batched
//! verifiers agree with per-item verification — same accept/reject
//! decision for every item, exact culprit attribution on mixed batches.
//! These properties drive both verifiers over arbitrary mixed batches
//! (including the exactly-one-invalid and all-invalid corners) and demand
//! exact agreement.

use mahimahi_crypto::coin::{CoinDealer, CoinShare};
use mahimahi_crypto::schnorr::{self, Keypair, PublicKey, Signature};
use proptest::collection::vec;
use proptest::prelude::*;

/// How an item in a batch is made invalid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Corruption {
    /// The signature is honest.
    None,
    /// Signature over a different message.
    WrongMessage,
    /// Signature by a different keypair.
    WrongSigner,
}

/// Decodes one generated word into a batch item: the low bit picks
/// validity, the next bits pick the corruption flavor, the signer, and the
/// message. `force` overrides the validity choice when set.
fn decode_item(word: u64, force: Option<bool>) -> (u64, u64, Corruption) {
    let valid = force.unwrap_or(word & 1 == 0);
    let corruption = if valid {
        Corruption::None
    } else if word & 2 == 0 {
        Corruption::WrongMessage
    } else {
        Corruption::WrongSigner
    };
    let signer_seed = (word >> 2) % 64;
    let message_id = (word >> 8) % 1_000;
    (message_id, signer_seed, corruption)
}

/// Materializes one item as `(message, public key, signature)`.
fn materialize(word: u64, force: Option<bool>) -> (Vec<u8>, PublicKey, Signature) {
    let (message_id, signer_seed, corruption) = decode_item(word, force);
    let keypair = Keypair::from_seed(signer_seed);
    let message = format!("message-{message_id}").into_bytes();
    let signature = match corruption {
        Corruption::None => keypair.sign(&message),
        Corruption::WrongMessage => keypair.sign(b"a different message"),
        Corruption::WrongSigner => Keypair::from_seed(signer_seed ^ 0xdead_beef).sign(&message),
    };
    (message, *keypair.public(), signature)
}

fn borrow(batch: &[(Vec<u8>, PublicKey, Signature)]) -> Vec<(&[u8], PublicKey, Signature)> {
    batch
        .iter()
        .map(|(message, public, signature)| (message.as_slice(), *public, *signature))
        .collect()
}

/// Per-item ground truth: the indices the batch verifier must attribute.
fn expected_culprits(batch: &[(Vec<u8>, PublicKey, Signature)]) -> Vec<usize> {
    batch
        .iter()
        .enumerate()
        .filter(|(_, (message, public, signature))| public.verify(message, signature).is_err())
        .map(|(index, _)| index)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Batched Schnorr verification agrees with per-item verification on
    /// arbitrary mixed batches, with exact culprit attribution.
    #[test]
    fn schnorr_batch_agrees_with_per_item(words in vec(any::<u64>(), 0..=24)) {
        let batch: Vec<_> = words.iter().map(|&word| materialize(word, None)).collect();
        let culprits = expected_culprits(&batch);
        match schnorr::batch_verify_attributed(&borrow(&batch)) {
            Ok(()) => prop_assert!(culprits.is_empty(), "batch accepted {:?}", culprits),
            Err(attributed) => prop_assert_eq!(attributed, culprits),
        }
        // The pass/fail-only combined equation agrees on the verdict.
        prop_assert_eq!(
            schnorr::batch_verify(&borrow(&batch)).is_ok(),
            expected_culprits(&batch).is_empty()
        );
    }

    /// Exactly one invalid item in an otherwise valid batch is always
    /// attributed — the multi-scalar fast path must never mask it.
    #[test]
    fn schnorr_single_culprit_is_always_found(
        valid_words in vec(any::<u64>(), 1..16),
        bad_word in any::<u64>(),
        position_word in any::<u64>(),
    ) {
        let position = (position_word % (valid_words.len() as u64 + 1)) as usize;
        let mut batch: Vec<_> = valid_words
            .iter()
            .map(|&word| materialize(word, Some(true)))
            .collect();
        batch.insert(position, materialize(bad_word, Some(false)));
        prop_assert_eq!(
            schnorr::batch_verify_attributed(&borrow(&batch)),
            Err(vec![position])
        );
    }

    /// All-invalid batches are rejected with every index attributed.
    #[test]
    fn schnorr_all_invalid_attributes_everything(words in vec(any::<u64>(), 1..16)) {
        let batch: Vec<_> = words
            .iter()
            .map(|&word| materialize(word, Some(false)))
            .collect();
        prop_assert_eq!(
            schnorr::batch_verify_attributed(&borrow(&batch)),
            Err((0..batch.len()).collect::<Vec<_>>())
        );
    }

    /// Batched coin-share (DLEQ) verification agrees with per-share
    /// verification on arbitrary mixed batches: shares may be honest, come
    /// from the wrong round, or carry an unknown holder index.
    #[test]
    fn coin_share_batch_agrees_with_per_share(
        round in 1u64..1_000,
        picks in vec(any::<u64>(), 0..12),
    ) {
        let (secrets, coin) = CoinDealer::deal_seeded(4, 3, 0xc01);
        let shares: Vec<CoinShare> = picks
            .iter()
            .map(|&word| {
                let holder = (word % 4) as usize;
                match (word >> 8) % 3 {
                    // Honest share for this round.
                    0 => secrets[holder].share_for_round(round),
                    // Share for a different round: its proof verifies
                    // against the wrong base.
                    1 => secrets[holder].share_for_round(round + 1),
                    // Index spliced to an unknown holder via the codec.
                    _ => {
                        let mut bytes = secrets[holder].share_for_round(round).to_bytes();
                        bytes[..8].copy_from_slice(&17u64.to_le_bytes());
                        CoinShare::from_bytes(&bytes).expect("spliced share decodes")
                    }
                }
            })
            .collect();
        let expected: Vec<usize> = shares
            .iter()
            .enumerate()
            .filter(|(_, share)| coin.verify_share(round, share).is_err())
            .map(|(index, _)| index)
            .collect();
        match coin.verify_shares(round, &shares) {
            Ok(()) => prop_assert!(expected.is_empty(), "batch accepted {:?}", expected),
            Err(culprits) => prop_assert_eq!(culprits, expected),
        }
    }
}
