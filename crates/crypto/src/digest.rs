//! 32-byte content digests.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::{hex_decode, hex_encode};

/// A 32-byte BLAKE2b-256 digest identifying a block, transaction, or other
/// content-addressed object.
///
/// # Example
///
/// ```
/// use mahimahi_crypto::blake2b::blake2b_256;
///
/// let digest = blake2b_256(b"hello");
/// assert_eq!(digest.to_string().len(), 64);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct Digest([u8; 32]);

impl Digest {
    /// The number of bytes in a digest.
    pub const LENGTH: usize = 32;

    /// The all-zero digest, used as a placeholder for genesis content.
    pub const ZERO: Digest = Digest([0; 32]);

    /// Wraps raw digest bytes.
    pub const fn new(bytes: [u8; 32]) -> Self {
        Digest(bytes)
    }

    /// Builds a digest from a byte slice, returning `None` unless the slice
    /// is exactly 32 bytes long.
    pub fn from_slice(slice: &[u8]) -> Option<Self> {
        let bytes: [u8; 32] = slice.try_into().ok()?;
        Some(Digest(bytes))
    }

    /// Parses a digest from 64 hex characters.
    pub fn from_hex(s: &str) -> Option<Self> {
        Self::from_slice(&hex_decode(s)?)
    }

    /// Returns the digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Consumes the digest and returns its bytes.
    pub fn into_bytes(self) -> [u8; 32] {
        self.0
    }

    /// Returns the first 8 bytes interpreted as a little-endian integer.
    ///
    /// Useful for cheap pseudo-random decisions derived from content, e.g.
    /// deterministic tie-breaking.
    pub fn prefix_u64(&self) -> u64 {
        u64::from_le_bytes(self.0[..8].try_into().expect("8-byte prefix"))
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; 32]> for Digest {
    fn from(bytes: [u8; 32]) -> Self {
        Digest(bytes)
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", hex_encode(&self.0))
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Eight hex chars are enough to disambiguate in logs.
        write!(f, "Digest({}…)", &hex_encode(&self.0)[..8])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_hex() {
        let digest = Digest::new([7; 32]);
        let hex = digest.to_string();
        assert_eq!(Digest::from_hex(&hex), Some(digest));
    }

    #[test]
    fn from_slice_rejects_wrong_length() {
        assert!(Digest::from_slice(&[0; 31]).is_none());
        assert!(Digest::from_slice(&[0; 33]).is_none());
        assert!(Digest::from_slice(&[0; 32]).is_some());
    }

    #[test]
    fn prefix_u64_reads_little_endian() {
        let mut bytes = [0u8; 32];
        bytes[0] = 1;
        assert_eq!(Digest::new(bytes).prefix_u64(), 1);
        bytes[7] = 1;
        assert_eq!(Digest::new(bytes).prefix_u64(), 1 | (1 << 56),);
    }

    #[test]
    fn debug_is_nonempty_and_short() {
        let repr = format!("{:?}", Digest::ZERO);
        assert!(repr.contains("Digest"));
        assert!(repr.len() < 64);
    }

    #[test]
    fn zero_digest_is_default() {
        assert_eq!(Digest::default(), Digest::ZERO);
    }
}
