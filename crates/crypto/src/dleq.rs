//! Chaum–Pedersen discrete-log-equality proofs.
//!
//! A coin share `σ_i = h_r^{s_i}` is only useful if other validators can
//! check it without knowing `s_i`. The prover shows that
//! `log_g(pk_i) = log_{h_r}(σ_i)` — i.e. the same exponent links the
//! long-term public share key and the per-round coin share — with the
//! standard non-interactive (Fiat–Shamir) Chaum–Pedersen protocol.

use serde::{Deserialize, Serialize};

use crate::group::{GroupElement, Scalar};
use crate::CryptoError;

const DLEQ_DOMAIN: &[u8] = b"mahimahi-dleq-v1";

/// A non-interactive proof that `log_{base_a}(a) == log_{base_b}(b)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DleqProof {
    challenge: Scalar,
    response: Scalar,
}

impl DleqProof {
    /// Proves knowledge of `exponent` such that `a = base_a^exponent` and
    /// `b = base_b^exponent`.
    ///
    /// The commitment nonce is derived deterministically from the witness and
    /// the statement, so proving is deterministic (no RNG required) without
    /// compromising zero-knowledge against parties ignorant of the witness.
    pub fn prove(
        base_a: GroupElement,
        a: GroupElement,
        base_b: GroupElement,
        b: GroupElement,
        exponent: Scalar,
    ) -> Self {
        let w = Scalar::hash_to_scalar(&[
            b"mahimahi-dleq-nonce",
            &exponent.value().to_le_bytes(),
            &base_a.to_bytes(),
            &a.to_bytes(),
            &base_b.to_bytes(),
            &b.to_bytes(),
        ]);
        let w = if w == Scalar::ZERO { Scalar::ONE } else { w };
        let commit_a = base_a.pow(w);
        let commit_b = base_b.pow(w);
        let challenge = Self::challenge(base_a, a, base_b, b, commit_a, commit_b);
        let response = w + challenge * exponent;
        DleqProof {
            challenge,
            response,
        }
    }

    /// Verifies the proof against the statement.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidCoinShare`] when the proof does not
    /// verify.
    pub fn verify(
        &self,
        base_a: GroupElement,
        a: GroupElement,
        base_b: GroupElement,
        b: GroupElement,
    ) -> Result<(), CryptoError> {
        // Recompute the commitments: A = base_a^z · a^{-c}, B = base_b^z · b^{-c}.
        let commit_a = base_a
            .pow(self.response)
            .mul(a.pow(self.challenge).inverse());
        let commit_b = base_b
            .pow(self.response)
            .mul(b.pow(self.challenge).inverse());
        let expected = Self::challenge(base_a, a, base_b, b, commit_a, commit_b);
        if expected == self.challenge {
            Ok(())
        } else {
            Err(CryptoError::InvalidCoinShare)
        }
    }

    /// Serializes the proof to 16 bytes (challenge ‖ response).
    pub fn to_bytes(self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.challenge.value().to_le_bytes());
        out[8..].copy_from_slice(&self.response.value().to_le_bytes());
        out
    }

    /// Deserializes a proof, validating scalar ranges.
    pub fn from_bytes(bytes: &[u8; 16]) -> Option<Self> {
        let challenge = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"));
        let response = u64::from_le_bytes(bytes[8..].try_into().expect("8 bytes"));
        if challenge >= crate::group::ORDER_Q || response >= crate::group::ORDER_Q {
            return None;
        }
        Some(DleqProof {
            challenge: Scalar::new(challenge),
            response: Scalar::new(response),
        })
    }

    fn challenge(
        base_a: GroupElement,
        a: GroupElement,
        base_b: GroupElement,
        b: GroupElement,
        commit_a: GroupElement,
        commit_b: GroupElement,
    ) -> Scalar {
        Scalar::hash_to_scalar(&[
            DLEQ_DOMAIN,
            &base_a.to_bytes(),
            &a.to_bytes(),
            &base_b.to_bytes(),
            &b.to_bytes(),
            &commit_a.to_bytes(),
            &commit_b.to_bytes(),
        ])
    }
}

/// One statement of a DLEQ batch: the proof plus the four public group
/// elements it speaks about (`log_{base_a}(a) == log_{base_b}(b)`).
pub type DleqStatement = (
    GroupElement,
    GroupElement,
    GroupElement,
    GroupElement,
    DleqProof,
);

/// Verifies a batch of DLEQ statements and, on failure, names the offenders.
///
/// Chaum–Pedersen proofs in challenge form do **not** admit a multi-scalar
/// collapse: recomputing each Fiat–Shamir challenge requires the per-item
/// commitments individually, so every proof is checked on its own. Batching
/// still pays off for callers because shared per-batch work (e.g. deriving
/// the per-round coin base) is hoisted out of the loop and failures are
/// attributed in one pass instead of ad-hoc caller-side retries.
///
/// # Errors
///
/// Returns the sorted indices of every statement whose proof fails.
pub fn batch_verify_attributed(statements: &[DleqStatement]) -> Result<(), Vec<usize>> {
    let culprits: Vec<usize> = statements
        .iter()
        .enumerate()
        .filter(|(_, (base_a, a, base_b, b, proof))| {
            proof.verify(*base_a, *a, *base_b, *b).is_err()
        })
        .map(|(index, _)| index)
        .collect();
    if culprits.is_empty() {
        Ok(())
    } else {
        Err(culprits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(
        exponent: u64,
        round: u64,
    ) -> (
        GroupElement,
        GroupElement,
        GroupElement,
        GroupElement,
        Scalar,
    ) {
        let x = Scalar::new(exponent);
        let g = GroupElement::generator();
        let h = GroupElement::hash_to_group(&[b"round", &round.to_le_bytes()]);
        (g, g.pow(x), h, h.pow(x), x)
    }

    #[test]
    fn proves_and_verifies() {
        let (g, pk, h, sigma, x) = setup(31337, 5);
        let proof = DleqProof::prove(g, pk, h, sigma, x);
        assert!(proof.verify(g, pk, h, sigma).is_ok());
    }

    #[test]
    fn rejects_wrong_share() {
        let (g, pk, h, _, x) = setup(31337, 5);
        let wrong_sigma = h.pow(Scalar::new(999));
        let proof = DleqProof::prove(g, pk, h, wrong_sigma, x);
        // The proof was built over an inconsistent statement: verification of
        // the equality must fail because log_g(pk) != log_h(wrong_sigma).
        assert_eq!(
            proof.verify(g, pk, h, wrong_sigma),
            Err(CryptoError::InvalidCoinShare)
        );
    }

    #[test]
    fn rejects_statement_swap() {
        let (g, pk, h, sigma, x) = setup(42, 9);
        let proof = DleqProof::prove(g, pk, h, sigma, x);
        let (g2, pk2, h2, sigma2, _) = setup(43, 9);
        assert_eq!(
            proof.verify(g2, pk2, h2, sigma2),
            Err(CryptoError::InvalidCoinShare)
        );
    }

    #[test]
    fn rejects_tampered_proof() {
        let (g, pk, h, sigma, x) = setup(7, 1);
        let proof = DleqProof::prove(g, pk, h, sigma, x);
        let tampered = DleqProof {
            challenge: proof.challenge + Scalar::ONE,
            response: proof.response,
        };
        assert_eq!(
            tampered.verify(g, pk, h, sigma),
            Err(CryptoError::InvalidCoinShare)
        );
    }

    #[test]
    fn proof_is_deterministic() {
        let (g, pk, h, sigma, x) = setup(1001, 2);
        assert_eq!(
            DleqProof::prove(g, pk, h, sigma, x),
            DleqProof::prove(g, pk, h, sigma, x)
        );
    }

    #[test]
    fn batched_statements_attribute_failures() {
        let statements: Vec<DleqStatement> = (0..5u64)
            .map(|i| {
                let (g, pk, h, sigma, x) = setup(100 + i, 4);
                (g, pk, h, sigma, DleqProof::prove(g, pk, h, sigma, x))
            })
            .collect();
        assert!(batch_verify_attributed(&statements).is_ok());

        let mut poisoned = statements.clone();
        poisoned[1].3 = poisoned[2].3; // sigma from a different statement
        poisoned[4].1 = poisoned[0].1;
        assert_eq!(batch_verify_attributed(&poisoned), Err(vec![1, 4]));
        assert!(batch_verify_attributed(&[]).is_ok());
    }

    #[test]
    fn different_rounds_produce_different_proofs() {
        let (g, pk, h1, sigma1, x) = setup(1001, 2);
        let (_, _, h2, sigma2, _) = setup(1001, 3);
        let p1 = DleqProof::prove(g, pk, h1, sigma1, x);
        let p2 = DleqProof::prove(g, pk, h2, sigma2, x);
        assert_ne!(p1, p2);
        // Cross-verification must fail.
        assert!(p1.verify(g, pk, h2, sigma2).is_err());
        assert!(p2.verify(g, pk, h1, sigma1).is_err());
    }
}
