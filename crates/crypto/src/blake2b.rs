//! BLAKE2b implemented from scratch per [RFC 7693].
//!
//! The Mahi-Mahi implementation uses `blake2` for block digests; this module
//! is a dependency-free reimplementation supporting arbitrary output lengths
//! up to 64 bytes and the keyed (MAC) mode, verified against test vectors
//! generated from a reference implementation.
//!
//! [RFC 7693]: https://www.rfc-editor.org/rfc/rfc7693

use crate::digest::Digest;

/// The BLAKE2b initialization vector (RFC 7693 §2.6).
const IV: [u64; 8] = [
    0x6a09e667f3bcc908,
    0xbb67ae8584caa73b,
    0x3c6ef372fe94f82b,
    0xa54ff53a5f1d36f1,
    0x510e527fade682d1,
    0x9b05688c2b3e6c1f,
    0x1f83d9abfb41bd6b,
    0x5be0cd19137e2179,
];

/// Message word permutations for the 12 rounds (RFC 7693 §2.7).
const SIGMA: [[usize; 16]; 10] = [
    [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15],
    [14, 10, 4, 8, 9, 15, 13, 6, 1, 12, 0, 2, 11, 7, 5, 3],
    [11, 8, 12, 0, 5, 2, 15, 13, 10, 14, 3, 6, 7, 1, 9, 4],
    [7, 9, 3, 1, 13, 12, 11, 14, 2, 6, 5, 10, 4, 0, 15, 8],
    [9, 0, 5, 7, 2, 4, 10, 15, 14, 1, 11, 12, 6, 8, 3, 13],
    [2, 12, 6, 10, 0, 11, 8, 3, 4, 13, 7, 5, 15, 14, 1, 9],
    [12, 5, 1, 15, 14, 13, 4, 10, 0, 7, 6, 3, 9, 2, 8, 11],
    [13, 11, 7, 14, 12, 1, 3, 9, 5, 0, 15, 4, 8, 6, 2, 10],
    [6, 15, 14, 9, 11, 3, 0, 8, 12, 2, 13, 7, 1, 4, 10, 5],
    [10, 2, 8, 4, 7, 6, 1, 5, 15, 11, 9, 14, 3, 12, 13, 0],
];

const BLOCK_BYTES: usize = 128;

/// Incremental BLAKE2b hasher.
///
/// # Example
///
/// ```
/// use mahimahi_crypto::blake2b::Blake2b;
///
/// let mut hasher = Blake2b::new(32);
/// hasher.update(b"mahi");
/// hasher.update(b"-mahi");
/// let once = hasher.finalize();
/// assert_eq!(once, mahimahi_crypto::blake2b::blake2b_256(b"mahi-mahi").as_bytes().to_vec());
/// ```
#[derive(Debug, Clone)]
pub struct Blake2b {
    h: [u64; 8],
    /// Unprocessed input; flushed a block at a time.
    buffer: [u8; BLOCK_BYTES],
    buffer_len: usize,
    /// Total bytes compressed so far (128-bit counter, low/high words).
    counter: u128,
    out_len: usize,
}

impl Blake2b {
    /// Creates an unkeyed hasher producing `out_len` bytes of output.
    ///
    /// # Panics
    ///
    /// Panics if `out_len` is zero or greater than 64.
    pub fn new(out_len: usize) -> Self {
        Self::new_keyed(out_len, &[])
    }

    /// Creates a keyed hasher (MAC mode, RFC 7693 §2.9).
    ///
    /// # Panics
    ///
    /// Panics if `out_len` is zero or greater than 64, or if `key` is longer
    /// than 64 bytes.
    pub fn new_keyed(out_len: usize, key: &[u8]) -> Self {
        assert!((1..=64).contains(&out_len), "output length must be 1..=64");
        assert!(key.len() <= 64, "key must be at most 64 bytes");
        let mut h = IV;
        // Parameter block: digest length, key length, fanout = depth = 1.
        h[0] ^= 0x0101_0000 ^ ((key.len() as u64) << 8) ^ out_len as u64;
        let mut hasher = Self {
            h,
            buffer: [0; BLOCK_BYTES],
            buffer_len: 0,
            counter: 0,
            out_len,
        };
        if !key.is_empty() {
            let mut block = [0u8; BLOCK_BYTES];
            block[..key.len()].copy_from_slice(key);
            hasher.update(&block);
        }
        hasher
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        let mut rest = data;
        // Compress only when more input follows: the final block must be
        // compressed with the "last block" flag in `finalize`.
        while !rest.is_empty() {
            if self.buffer_len == BLOCK_BYTES {
                self.counter += BLOCK_BYTES as u128;
                let block = self.buffer;
                self.compress(&block, false);
                self.buffer_len = 0;
            }
            let take = (BLOCK_BYTES - self.buffer_len).min(rest.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&rest[..take]);
            self.buffer_len += take;
            rest = &rest[take..];
        }
    }

    /// Consumes the hasher and returns the digest bytes (`out_len` long).
    pub fn finalize(mut self) -> Vec<u8> {
        self.counter += self.buffer_len as u128;
        self.buffer[self.buffer_len..].fill(0);
        let block = self.buffer;
        self.compress(&block, true);
        let mut out = vec![0u8; self.out_len];
        for (i, chunk) in out.chunks_mut(8).enumerate() {
            chunk.copy_from_slice(&self.h[i].to_le_bytes()[..chunk.len()]);
        }
        out
    }

    fn compress(&mut self, block: &[u8; BLOCK_BYTES], last: bool) {
        let mut m = [0u64; 16];
        for (i, word) in m.iter_mut().enumerate() {
            *word = u64::from_le_bytes(block[i * 8..i * 8 + 8].try_into().expect("8-byte chunk"));
        }
        let mut v = [0u64; 16];
        v[..8].copy_from_slice(&self.h);
        v[8..].copy_from_slice(&IV);
        v[12] ^= self.counter as u64;
        v[13] ^= (self.counter >> 64) as u64;
        if last {
            v[14] = !v[14];
        }
        for round in 0..12 {
            let s = &SIGMA[round % 10];
            g(&mut v, 0, 4, 8, 12, m[s[0]], m[s[1]]);
            g(&mut v, 1, 5, 9, 13, m[s[2]], m[s[3]]);
            g(&mut v, 2, 6, 10, 14, m[s[4]], m[s[5]]);
            g(&mut v, 3, 7, 11, 15, m[s[6]], m[s[7]]);
            g(&mut v, 0, 5, 10, 15, m[s[8]], m[s[9]]);
            g(&mut v, 1, 6, 11, 12, m[s[10]], m[s[11]]);
            g(&mut v, 2, 7, 8, 13, m[s[12]], m[s[13]]);
            g(&mut v, 3, 4, 9, 14, m[s[14]], m[s[15]]);
        }
        for i in 0..8 {
            self.h[i] ^= v[i] ^ v[i + 8];
        }
    }
}

#[inline(always)]
fn g(v: &mut [u64; 16], a: usize, b: usize, c: usize, d: usize, x: u64, y: u64) {
    v[a] = v[a].wrapping_add(v[b]).wrapping_add(x);
    v[d] = (v[d] ^ v[a]).rotate_right(32);
    v[c] = v[c].wrapping_add(v[d]);
    v[b] = (v[b] ^ v[c]).rotate_right(24);
    v[a] = v[a].wrapping_add(v[b]).wrapping_add(y);
    v[d] = (v[d] ^ v[a]).rotate_right(16);
    v[c] = v[c].wrapping_add(v[d]);
    v[b] = (v[b] ^ v[c]).rotate_right(63);
}

/// Hashes `data` to a 32-byte [`Digest`] (BLAKE2b-256).
///
/// This is the digest function used for all block and transaction hashes in
/// the reproduction, mirroring the paper's use of `blake2`.
pub fn blake2b_256(data: &[u8]) -> Digest {
    let mut hasher = Blake2b::new(32);
    hasher.update(data);
    let out = hasher.finalize();
    Digest::from_slice(&out).expect("blake2b-256 output is 32 bytes")
}

/// Hashes the concatenation of `parts` to a 32-byte [`Digest`].
///
/// Each part is length-prefixed before hashing so that the boundary between
/// parts is unambiguous (`["ab","c"]` and `["a","bc"]` hash differently).
pub fn blake2b_256_parts(parts: &[&[u8]]) -> Digest {
    let mut hasher = Blake2b::new(32);
    for part in parts {
        hasher.update(&(part.len() as u64).to_le_bytes());
        hasher.update(part);
    }
    let out = hasher.finalize();
    Digest::from_slice(&out).expect("blake2b-256 output is 32 bytes")
}

/// Keyed BLAKE2b-256 (MAC mode) over `data`.
pub fn blake2b_256_keyed(key: &[u8], data: &[u8]) -> Digest {
    let mut hasher = Blake2b::new_keyed(32, key);
    hasher.update(data);
    let out = hasher.finalize();
    Digest::from_slice(&out).expect("blake2b-256 output is 32 bytes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex_encode;

    fn b2b_hex(out_len: usize, key: &[u8], data: &[u8]) -> String {
        let mut hasher = Blake2b::new_keyed(out_len, key);
        hasher.update(data);
        hex_encode(&hasher.finalize())
    }

    // Reference values generated with Python's hashlib (RFC 7693-conformant).

    #[test]
    fn rfc7693_abc_512() {
        assert_eq!(
            b2b_hex(64, &[], b"abc"),
            "ba80a53f981c4d0d6a2797b69f12f6e94c212f14685ac4b74b12bb6fdbffa2d1\
             7d87c5392aab792dc252d5de4533cc9518d38aa8dbf1925ab92386edd4009923"
                .replace(char::is_whitespace, "")
        );
    }

    #[test]
    fn empty_512() {
        assert_eq!(
            b2b_hex(64, &[], b""),
            "786a02f742015903c6c6fd852552d272912f4740e15847618a86e217f71f5419\
             d25e1031afee585313896444934eb04b903a685b1448b755d56f701afe9be2ce"
                .replace(char::is_whitespace, "")
        );
    }

    #[test]
    fn empty_256() {
        assert_eq!(
            b2b_hex(32, &[], b""),
            "0e5751c026e543b2e8ab2eb06099daa1d1e5df47778f7787faab45cdf12fe3a8"
        );
    }

    #[test]
    fn abc_256() {
        assert_eq!(
            b2b_hex(32, &[], b"abc"),
            "bddd813c634239723171ef3fee98579b94964e3bb1cb3e427262c8c068d52319"
        );
    }

    #[test]
    fn keyed_empty_kat() {
        let key: Vec<u8> = (0u8..64).collect();
        assert_eq!(
            b2b_hex(64, &key, b""),
            "10ebb67700b1868efb4417987acf4690ae9d972fb7a590c2f02871799aaa4786\
             b5e996e8f0f4eb981fc214b005f42d2ff4233499391653df7aefcbc13fc51568"
                .replace(char::is_whitespace, "")
        );
    }

    #[test]
    fn keyed_255_bytes_kat() {
        let key: Vec<u8> = (0u8..64).collect();
        let data: Vec<u8> = (0u8..255).collect();
        assert_eq!(
            b2b_hex(64, &key, &data),
            "142709d62e28fcccd0af97fad0f8465b971e82201dc51070faa0372aa43e9248\
             4be1c1e73ba10906d5d1853db6a4106e0a7bf9800d373d6dee2d46d62ef2a461"
                .replace(char::is_whitespace, "")
        );
    }

    #[test]
    fn thousand_zero_bytes_256() {
        assert_eq!(
            b2b_hex(32, &[], &vec![0u8; 1000]),
            "919da92d5040aeac86a75eb4125da3d0a9423bae8ae422b733b755f7baa8dadf"
        );
    }

    #[test]
    fn exactly_one_block_256() {
        let data: Vec<u8> = (0u8..128).collect();
        assert_eq!(
            b2b_hex(32, &[], &data),
            "c3582f71ebb2be66fa5dd750f80baae97554f3b015663c8be377cfcb2488c1d1"
        );
    }

    #[test]
    fn one_block_plus_one_byte_256() {
        let data: Vec<u8> = (0u8..129).collect();
        assert_eq!(
            b2b_hex(32, &[], &data),
            "f7f3c46ba2564ff4c4c162da1f5b605f9f1c4aa6a20652a9f9a337c1a2f5b9c9"
        );
    }

    #[test]
    fn keyed_32_byte_key() {
        assert_eq!(
            b2b_hex(32, b"0123456789abcdef0123456789abcdef", b"mahi-mahi"),
            "c3e118a713bb2b8007edff0285fa399243e03b05f5c115d2b28f8c56818b84f7"
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data: Vec<u8> = (0..1000u32).flat_map(|i| i.to_le_bytes()).collect();
        let one_shot = blake2b_256(&data);
        for chunk_size in [1, 7, 127, 128, 129, 500] {
            let mut hasher = Blake2b::new(32);
            for chunk in data.chunks(chunk_size) {
                hasher.update(chunk);
            }
            assert_eq!(
                hasher.finalize(),
                one_shot.as_bytes().to_vec(),
                "chunk size {chunk_size}"
            );
        }
    }

    #[test]
    fn parts_are_length_prefixed() {
        assert_ne!(
            blake2b_256_parts(&[b"ab", b"c"]),
            blake2b_256_parts(&[b"a", b"bc"]),
        );
    }

    #[test]
    fn keyed_differs_from_unkeyed() {
        assert_ne!(blake2b_256_keyed(b"key", b"data"), blake2b_256(b"data"),);
    }

    #[test]
    #[should_panic(expected = "output length")]
    fn rejects_zero_output() {
        let _ = Blake2b::new(0);
    }

    #[test]
    #[should_panic(expected = "output length")]
    fn rejects_oversized_output() {
        let _ = Blake2b::new(65);
    }

    #[test]
    #[should_panic(expected = "key must be")]
    fn rejects_oversized_key() {
        let _ = Blake2b::new_keyed(32, &[0u8; 65]);
    }
}
