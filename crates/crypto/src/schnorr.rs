//! Schnorr signatures over the toy group, standing in for the
//! `ed25519-consensus` signatures of the paper's implementation.
//!
//! The construction is the standard one: a deterministic nonce
//! `k = H(sk ‖ m)`, commitment `R = g^k`, challenge `e = H(R ‖ pk ‖ m)`, and
//! response `s = k + e·x`. Verification checks `g^s = R · pk^e` using only
//! public data, so unlike a MAC-based simulation the full asymmetric code
//! path (including batch verification) is exercised.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::group::{GroupElement, Scalar};
use crate::CryptoError;

const SIGN_DOMAIN: &[u8] = b"mahimahi-schnorr-v1";
const NONCE_DOMAIN: &[u8] = b"mahimahi-schnorr-nonce-v1";

/// A Schnorr secret key (a scalar).
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SecretKey(Scalar);

impl SecretKey {
    /// Samples a fresh secret key.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        loop {
            let x = Scalar::random(rng);
            if x != Scalar::ZERO {
                return SecretKey(x);
            }
        }
    }

    /// Derives a secret key deterministically from a 64-bit seed.
    ///
    /// Committee setup in tests and simulations uses per-authority seeds so
    /// that every run is reproducible.
    pub fn from_seed(seed: u64) -> Self {
        let x = Scalar::hash_to_scalar(&[b"mahimahi-sk-seed", &seed.to_le_bytes()]);
        if x == Scalar::ZERO {
            // Astronomically unlikely; fall back to a fixed non-zero scalar.
            SecretKey(Scalar::ONE)
        } else {
            SecretKey(x)
        }
    }

    /// Returns the corresponding public key `g^x`.
    pub fn public(&self) -> PublicKey {
        PublicKey(GroupElement::generator().pow(self.0))
    }

    fn scalar(&self) -> Scalar {
        self.0
    }
}

impl fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print key material.
        write!(f, "SecretKey(<redacted>)")
    }
}

/// A Schnorr public key (`g^x`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PublicKey(GroupElement);

impl PublicKey {
    /// Returns the underlying group element.
    pub fn element(&self) -> GroupElement {
        self.0
    }

    /// Serializes the key to 8 bytes.
    pub fn to_bytes(self) -> [u8; 8] {
        self.0.to_bytes()
    }

    /// Deserializes a key, validating subgroup membership.
    pub fn from_bytes(bytes: &[u8; 8]) -> Option<Self> {
        GroupElement::from_bytes(bytes).map(PublicKey)
    }

    /// Verifies `signature` over `message`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidSignature`] when verification fails.
    pub fn verify(&self, message: &[u8], signature: &Signature) -> Result<(), CryptoError> {
        let e = challenge(&signature.commitment, self, message);
        let lhs = GroupElement::generator().pow(signature.response);
        let rhs = signature.commitment.mul(self.0.pow(e));
        if lhs == rhs {
            Ok(())
        } else {
            Err(CryptoError::InvalidSignature)
        }
    }
}

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PublicKey({})", self.0.value())
    }
}

impl fmt::Display for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0.value())
    }
}

/// A Schnorr signature `(R, s)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Signature {
    commitment: GroupElement,
    response: Scalar,
}

impl Signature {
    /// Byte length of a serialized signature.
    pub const LENGTH: usize = 16;

    /// Serializes the signature to 16 bytes (commitment ‖ response).
    pub fn to_bytes(self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.commitment.to_bytes());
        out[8..].copy_from_slice(&self.response.value().to_le_bytes());
        out
    }

    /// Deserializes a signature, validating the commitment's subgroup
    /// membership and the response's range.
    pub fn from_bytes(bytes: &[u8; 16]) -> Option<Self> {
        let commitment = GroupElement::from_bytes(bytes[..8].try_into().expect("8 bytes"))?;
        let raw = u64::from_le_bytes(bytes[8..].try_into().expect("8 bytes"));
        if raw >= crate::group::ORDER_Q {
            return None;
        }
        Some(Signature {
            commitment,
            response: Scalar::new(raw),
        })
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Signature(R={}, s={})",
            self.commitment.value(),
            self.response.value()
        )
    }
}

/// A secret/public key pair.
///
/// # Example
///
/// ```
/// use mahimahi_crypto::schnorr::Keypair;
///
/// let keypair = Keypair::from_seed(3);
/// let signature = keypair.sign(b"block contents");
/// keypair.public().verify(b"block contents", &signature)?;
/// # Ok::<(), mahimahi_crypto::CryptoError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Keypair {
    secret: SecretKey,
    public: PublicKey,
}

impl Keypair {
    /// Samples a fresh key pair.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let secret = SecretKey::generate(rng);
        let public = secret.public();
        Keypair { secret, public }
    }

    /// Derives a key pair deterministically from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        let secret = SecretKey::from_seed(seed);
        let public = secret.public();
        Keypair { secret, public }
    }

    /// Returns the public half.
    pub fn public(&self) -> &PublicKey {
        &self.public
    }

    /// Signs `message` with a deterministic nonce.
    pub fn sign(&self, message: &[u8]) -> Signature {
        let sk_bytes = self.secret.scalar().value().to_le_bytes();
        let k = Scalar::hash_to_scalar(&[NONCE_DOMAIN, &sk_bytes, message]);
        // k = 0 would leak the key through s = e·x; remap deterministically.
        let k = if k == Scalar::ZERO { Scalar::ONE } else { k };
        let commitment = GroupElement::generator().pow(k);
        let e = challenge(&commitment, &self.public, message);
        let response = k + e * self.secret.scalar();
        Signature {
            commitment,
            response,
        }
    }
}

fn challenge(commitment: &GroupElement, public: &PublicKey, message: &[u8]) -> Scalar {
    Scalar::hash_to_scalar(&[
        SIGN_DOMAIN,
        &commitment.to_bytes(),
        &public.to_bytes(),
        message,
    ])
}

/// Verifies a batch of `(message, public key, signature)` triples.
///
/// Cheaper than verifying one-by-one for large batches because the generator
/// side collapses into a single exponentiation of the summed responses,
/// randomized with per-item weights to prevent cross-item cancellation.
///
/// # Errors
///
/// Returns [`CryptoError::InvalidSignature`] if any triple fails; batch
/// verification does not identify *which* one (callers fall back to serial
/// verification to locate offenders).
pub fn batch_verify(items: &[(&[u8], PublicKey, Signature)]) -> Result<(), CryptoError> {
    if items.is_empty() {
        return Ok(());
    }
    // Deterministic weights derived from the whole batch; an adversary
    // cannot choose signatures as a function of the weights because the
    // weights depend on the signatures. The transcript is compressed to
    // one digest first so deriving n weights hashes the batch once, not n
    // times (the seed is O(n) bytes — hashing it per index made large
    // batches quadratic).
    let mut weight_seed = Vec::new();
    for (message, public, signature) in items {
        weight_seed.extend_from_slice(&signature.to_bytes());
        weight_seed.extend_from_slice(&public.to_bytes());
        weight_seed.extend_from_slice(&(message.len() as u64).to_le_bytes());
        weight_seed.extend_from_slice(message);
    }
    let transcript = crate::blake2b::blake2b_256(&weight_seed);

    let mut response_sum = Scalar::ZERO;
    let mut rhs = GroupElement::IDENTITY;
    for (index, (message, public, signature)) in items.iter().enumerate() {
        let weight = Scalar::hash_to_scalar(&[
            b"mahimahi-batch-weight",
            transcript.as_bytes(),
            &(index as u64).to_le_bytes(),
        ]);
        let e = challenge(&signature.commitment, public, message);
        response_sum += weight * signature.response;
        rhs = rhs
            .mul(signature.commitment.pow(weight))
            .mul(public.element().pow(weight * e));
    }
    if GroupElement::generator().pow(response_sum) == rhs {
        Ok(())
    } else {
        Err(CryptoError::InvalidSignature)
    }
}

/// Verifies a batch of `(message, public key, signature)` triples and, on
/// failure, names the offenders.
///
/// The fast path is the multi-scalar [`batch_verify`] check: one combined
/// equation for the whole batch. Only when that rejects does the function
/// fall back to per-item verification, attributing the failure to the
/// specific indices whose signatures do not verify. A valid batch therefore
/// pays a single combined check; a poisoned batch pays one combined check
/// plus one serial pass.
///
/// # Errors
///
/// Returns the sorted indices of every item that fails individual
/// verification. The list is never empty: if the combined check rejects but
/// every item verifies individually (a weight collision, astronomically
/// unlikely), the per-item result is authoritative and the batch is
/// accepted.
pub fn batch_verify_attributed(items: &[(&[u8], PublicKey, Signature)]) -> Result<(), Vec<usize>> {
    if batch_verify(items).is_ok() {
        return Ok(());
    }
    let culprits: Vec<usize> = items
        .iter()
        .enumerate()
        .filter(|(_, (message, public, signature))| public.verify(message, signature).is_err())
        .map(|(index, _)| index)
        .collect();
    if culprits.is_empty() {
        // The combined equation rejected but every item verifies serially:
        // the serial pass is ground truth.
        Ok(())
    } else {
        Err(culprits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sign_verify_round_trip() {
        let keypair = Keypair::from_seed(42);
        let signature = keypair.sign(b"hello");
        assert!(keypair.public().verify(b"hello", &signature).is_ok());
    }

    #[test]
    fn verify_rejects_wrong_message() {
        let keypair = Keypair::from_seed(42);
        let signature = keypair.sign(b"hello");
        assert_eq!(
            keypair.public().verify(b"world", &signature),
            Err(CryptoError::InvalidSignature)
        );
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let alice = Keypair::from_seed(1);
        let bob = Keypair::from_seed(2);
        let signature = alice.sign(b"hello");
        assert_eq!(
            bob.public().verify(b"hello", &signature),
            Err(CryptoError::InvalidSignature)
        );
    }

    #[test]
    fn signatures_are_deterministic() {
        let keypair = Keypair::from_seed(9);
        assert_eq!(keypair.sign(b"m"), keypair.sign(b"m"));
        assert_ne!(keypair.sign(b"m"), keypair.sign(b"n"));
    }

    #[test]
    fn seeded_keys_are_distinct_and_stable() {
        let a = Keypair::from_seed(0);
        let b = Keypair::from_seed(1);
        assert_ne!(a.public(), b.public());
        assert_eq!(Keypair::from_seed(0).public(), a.public());
    }

    #[test]
    fn signature_round_trips_through_bytes() {
        let keypair = Keypair::from_seed(5);
        let signature = keypair.sign(b"payload");
        let bytes = signature.to_bytes();
        assert_eq!(Signature::from_bytes(&bytes), Some(signature));
    }

    #[test]
    fn signature_from_bytes_rejects_out_of_range_response() {
        let keypair = Keypair::from_seed(5);
        let mut bytes = keypair.sign(b"payload").to_bytes();
        bytes[8..].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(Signature::from_bytes(&bytes), None);
    }

    #[test]
    fn public_key_round_trips_through_bytes() {
        let keypair = Keypair::from_seed(11);
        let bytes = keypair.public().to_bytes();
        assert_eq!(PublicKey::from_bytes(&bytes), Some(*keypair.public()));
    }

    #[test]
    fn generated_keys_sign_and_verify() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let keypair = Keypair::generate(&mut rng);
            let signature = keypair.sign(b"x");
            assert!(keypair.public().verify(b"x", &signature).is_ok());
        }
    }

    #[test]
    fn batch_verify_accepts_valid_batch() {
        let keypairs: Vec<_> = (0..8).map(Keypair::from_seed).collect();
        let messages: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 10]).collect();
        let items: Vec<(&[u8], PublicKey, Signature)> = keypairs
            .iter()
            .zip(&messages)
            .map(|(kp, m)| (m.as_slice(), *kp.public(), kp.sign(m)))
            .collect();
        assert!(batch_verify(&items).is_ok());
    }

    #[test]
    fn batch_verify_rejects_one_bad_signature() {
        let keypairs: Vec<_> = (0..8).map(Keypair::from_seed).collect();
        let messages: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 10]).collect();
        let mut items: Vec<(&[u8], PublicKey, Signature)> = keypairs
            .iter()
            .zip(&messages)
            .map(|(kp, m)| (m.as_slice(), *kp.public(), kp.sign(m)))
            .collect();
        // Swap one signature for a signature over a different message.
        items[3].2 = keypairs[3].sign(b"tampered");
        assert_eq!(batch_verify(&items), Err(CryptoError::InvalidSignature));
    }

    #[test]
    fn batch_verify_empty_is_ok() {
        assert!(batch_verify(&[]).is_ok());
        assert!(batch_verify_attributed(&[]).is_ok());
    }

    #[test]
    fn attributed_batch_accepts_valid_batch() {
        let keypairs: Vec<_> = (0..8).map(Keypair::from_seed).collect();
        let messages: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 10]).collect();
        let items: Vec<(&[u8], PublicKey, Signature)> = keypairs
            .iter()
            .zip(&messages)
            .map(|(kp, m)| (m.as_slice(), *kp.public(), kp.sign(m)))
            .collect();
        assert!(batch_verify_attributed(&items).is_ok());
    }

    #[test]
    fn attributed_batch_names_the_culprits() {
        let keypairs: Vec<_> = (0..8).map(Keypair::from_seed).collect();
        let messages: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 10]).collect();
        let mut items: Vec<(&[u8], PublicKey, Signature)> = keypairs
            .iter()
            .zip(&messages)
            .map(|(kp, m)| (m.as_slice(), *kp.public(), kp.sign(m)))
            .collect();
        items[2].2 = keypairs[2].sign(b"tampered");
        items[6].2 = keypairs[0].sign(&messages[6]); // wrong signer
        assert_eq!(batch_verify_attributed(&items), Err(vec![2, 6]));
    }

    #[test]
    fn attributed_batch_rejects_all_invalid() {
        let keypairs: Vec<_> = (0..4).map(Keypair::from_seed).collect();
        let items: Vec<(&[u8], PublicKey, Signature)> = keypairs
            .iter()
            .map(|kp| (b"claimed".as_slice(), *kp.public(), kp.sign(b"actual")))
            .collect();
        assert_eq!(batch_verify_attributed(&items), Err(vec![0, 1, 2, 3]));
    }

    #[test]
    fn secret_key_debug_is_redacted() {
        let secret = SecretKey::from_seed(1);
        assert_eq!(format!("{secret:?}"), "SecretKey(<redacted>)");
    }
}
