//! Toy discrete-log group: the order-`q` subgroup of `Z_p^*` for the safe
//! prime `p = 2q + 1` with `p ≈ 2^61`.
//!
//! All higher-level primitives (Schnorr signatures, Chaum–Pedersen proofs,
//! the threshold coin) are expressed over [`GroupElement`] and [`Scalar`],
//! exactly as they would be over an elliptic-curve group. The parameters are
//! deliberately small — see the crate-level security note.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::blake2b::blake2b_256_parts;

/// The safe prime `p = 2q + 1` (62 bits).
pub const MODULUS_P: u64 = 2_305_843_009_213_699_919;
/// The prime group order `q = (p - 1) / 2` (61 bits).
pub const ORDER_Q: u64 = 1_152_921_504_606_849_959;
/// A generator of the order-`q` subgroup (`2^2 mod p`; squares generate the
/// subgroup of quadratic residues, which has prime order `q`).
pub const GENERATOR: u64 = 4;

#[inline]
fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

#[inline]
fn pow_mod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    let mut acc: u64 = 1;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, m);
        }
        base = mul_mod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// An element of the scalar field `Z_q` (exponents of the group).
///
/// # Example
///
/// ```
/// use mahimahi_crypto::group::Scalar;
///
/// let a = Scalar::new(5);
/// let b = a.inverse().expect("5 is invertible");
/// assert_eq!(a * b, Scalar::ONE);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct Scalar(u64);

impl Scalar {
    /// The additive identity.
    pub const ZERO: Scalar = Scalar(0);
    /// The multiplicative identity.
    pub const ONE: Scalar = Scalar(1);

    /// Reduces `value` modulo `q`.
    pub const fn new(value: u64) -> Self {
        Scalar(value % ORDER_Q)
    }

    /// Returns the canonical representative in `[0, q)`.
    pub fn value(self) -> u64 {
        self.0
    }

    /// Samples a uniformly random scalar.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Rejection sampling avoids modulo bias.
        loop {
            let candidate: u64 = rng.gen();
            if candidate < ORDER_Q {
                return Scalar(candidate);
            }
        }
    }

    /// Reduces 16 bytes of hash output modulo `q` (negligible bias:
    /// 2^128 ≫ q²).
    pub fn from_bytes_wide(bytes: &[u8; 16]) -> Self {
        Scalar((u128::from_le_bytes(*bytes) % ORDER_Q as u128) as u64)
    }

    /// Hashes domain-separated parts to a scalar.
    pub fn hash_to_scalar(parts: &[&[u8]]) -> Self {
        let digest = blake2b_256_parts(parts);
        let wide: [u8; 16] = digest.as_bytes()[..16].try_into().expect("16-byte prefix");
        Scalar::from_bytes_wide(&wide)
    }

    /// Raises the scalar to `exp` modulo `q`.
    pub fn pow(self, exp: u64) -> Self {
        Scalar(pow_mod(self.0, exp, ORDER_Q))
    }

    /// Multiplicative inverse, or `None` for zero.
    pub fn inverse(self) -> Option<Self> {
        if self.0 == 0 {
            None
        } else {
            // Fermat: a^(q-2) = a^-1 mod q for prime q.
            Some(Scalar(pow_mod(self.0, ORDER_Q - 2, ORDER_Q)))
        }
    }
}

impl Add for Scalar {
    type Output = Scalar;
    fn add(self, rhs: Scalar) -> Scalar {
        let (sum, overflow) = self.0.overflowing_add(rhs.0);
        if overflow || sum >= ORDER_Q {
            Scalar(sum.wrapping_sub(ORDER_Q))
        } else {
            Scalar(sum)
        }
    }
}

impl AddAssign for Scalar {
    fn add_assign(&mut self, rhs: Scalar) {
        *self = *self + rhs;
    }
}

impl Sub for Scalar {
    type Output = Scalar;
    fn sub(self, rhs: Scalar) -> Scalar {
        if self.0 >= rhs.0 {
            Scalar(self.0 - rhs.0)
        } else {
            Scalar(self.0 + (ORDER_Q - rhs.0))
        }
    }
}

impl SubAssign for Scalar {
    fn sub_assign(&mut self, rhs: Scalar) {
        *self = *self - rhs;
    }
}

impl Mul for Scalar {
    type Output = Scalar;
    fn mul(self, rhs: Scalar) -> Scalar {
        Scalar(mul_mod(self.0, rhs.0, ORDER_Q))
    }
}

impl MulAssign for Scalar {
    fn mul_assign(&mut self, rhs: Scalar) {
        *self = *self * rhs;
    }
}

impl Neg for Scalar {
    type Output = Scalar;
    fn neg(self) -> Scalar {
        Scalar::ZERO - self
    }
}

impl From<u64> for Scalar {
    fn from(value: u64) -> Self {
        Scalar::new(value)
    }
}

impl fmt::Debug for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Scalar({})", self.0)
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An element of the order-`q` subgroup of `Z_p^*`.
///
/// # Example
///
/// ```
/// use mahimahi_crypto::group::{GroupElement, Scalar};
///
/// let g = GroupElement::generator();
/// let x = Scalar::new(42);
/// let y = Scalar::new(17);
/// assert_eq!(g.pow(x).pow(y), g.pow(x * y));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GroupElement(u64);

impl GroupElement {
    /// The group identity.
    pub const IDENTITY: GroupElement = GroupElement(1);

    /// Returns the fixed subgroup generator.
    pub const fn generator() -> Self {
        GroupElement(GENERATOR)
    }

    /// Interprets `value` as a group element if it lies in the subgroup.
    ///
    /// Membership test: `v^q mod p == 1` and `v != 0`.
    pub fn from_canonical(value: u64) -> Option<Self> {
        if value == 0 || value >= MODULUS_P {
            return None;
        }
        if pow_mod(value, ORDER_Q, MODULUS_P) == 1 {
            Some(GroupElement(value))
        } else {
            None
        }
    }

    /// Returns the canonical representative in `[1, p)`.
    pub fn value(self) -> u64 {
        self.0
    }

    /// The group operation (modular multiplication).
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: GroupElement) -> GroupElement {
        GroupElement(mul_mod(self.0, rhs.0, MODULUS_P))
    }

    /// Exponentiation by a scalar.
    pub fn pow(self, exp: Scalar) -> GroupElement {
        GroupElement(pow_mod(self.0, exp.value(), MODULUS_P))
    }

    /// The inverse element.
    pub fn inverse(self) -> GroupElement {
        GroupElement(pow_mod(self.0, MODULUS_P - 2, MODULUS_P))
    }

    /// Hashes domain-separated parts into the subgroup (as `g^H(parts)`).
    pub fn hash_to_group(parts: &[&[u8]]) -> GroupElement {
        GroupElement::generator().pow(Scalar::hash_to_scalar(parts))
    }

    /// Serializes the element as 8 little-endian bytes.
    pub fn to_bytes(self) -> [u8; 8] {
        self.0.to_le_bytes()
    }

    /// Deserializes an element, validating subgroup membership.
    pub fn from_bytes(bytes: &[u8; 8]) -> Option<Self> {
        GroupElement::from_canonical(u64::from_le_bytes(*bytes))
    }
}

impl Mul for GroupElement {
    type Output = GroupElement;
    fn mul(self, rhs: GroupElement) -> GroupElement {
        GroupElement::mul(self, rhs)
    }
}

impl fmt::Debug for GroupElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GroupElement({})", self.0)
    }
}

impl fmt::Display for GroupElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parameters_are_consistent() {
        assert_eq!(MODULUS_P, 2 * ORDER_Q + 1);
        // Generator is in the subgroup and non-trivial.
        assert_eq!(pow_mod(GENERATOR, ORDER_Q, MODULUS_P), 1);
        assert_ne!(GENERATOR, 1);
    }

    #[test]
    fn generator_has_order_q() {
        let g = GroupElement::generator();
        assert_eq!(g.pow(Scalar::new(ORDER_Q)), GroupElement::IDENTITY);
        assert_ne!(g.pow(Scalar::new(1)), GroupElement::IDENTITY);
    }

    #[test]
    fn scalar_field_axioms_spot_check() {
        let a = Scalar::new(123_456_789);
        let b = Scalar::new(ORDER_Q - 5);
        let c = Scalar::new(987_654_321);
        assert_eq!((a + b) + c, a + (b + c));
        assert_eq!((a * b) * c, a * (b * c));
        assert_eq!(a * (b + c), a * b + a * c);
        assert_eq!(a + (-a), Scalar::ZERO);
        assert_eq!(a - a, Scalar::ZERO);
    }

    #[test]
    fn scalar_inverse() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let a = Scalar::random(&mut rng);
            if a == Scalar::ZERO {
                continue;
            }
            assert_eq!(a * a.inverse().unwrap(), Scalar::ONE);
        }
        assert_eq!(Scalar::ZERO.inverse(), None);
    }

    #[test]
    fn group_element_round_trip() {
        let g = GroupElement::generator().pow(Scalar::new(999));
        assert_eq!(GroupElement::from_bytes(&g.to_bytes()), Some(g));
    }

    #[test]
    fn from_canonical_rejects_non_members() {
        // 2 is a generator of the full group Z_p^*, not the subgroup of
        // quadratic residues (2 is a non-residue mod this p since p ≡ 7 mod 8
        // would make it a residue; verify dynamically instead).
        let two_in_subgroup = pow_mod(2, ORDER_Q, MODULUS_P) == 1;
        assert_eq!(GroupElement::from_canonical(2).is_some(), two_in_subgroup);
        assert!(GroupElement::from_canonical(0).is_none());
        assert!(GroupElement::from_canonical(MODULUS_P).is_none());
    }

    #[test]
    fn inverse_element() {
        let x = GroupElement::generator().pow(Scalar::new(31337));
        assert_eq!(x.mul(x.inverse()), GroupElement::IDENTITY);
    }

    #[test]
    fn hash_to_group_is_deterministic_and_in_subgroup() {
        let a = GroupElement::hash_to_group(&[b"round", &7u64.to_le_bytes()]);
        let b = GroupElement::hash_to_group(&[b"round", &7u64.to_le_bytes()]);
        assert_eq!(a, b);
        assert!(GroupElement::from_canonical(a.value()).is_some());
        let c = GroupElement::hash_to_group(&[b"round", &8u64.to_le_bytes()]);
        assert_ne!(a, c);
    }

    #[test]
    fn hash_to_scalar_distributes() {
        // Not a statistical test, just that distinct inputs map to distinct
        // outputs for a handful of cases.
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..100 {
            let s = Scalar::hash_to_scalar(&[b"x", &i.to_le_bytes()]);
            assert!(seen.insert(s.value()));
        }
    }

    proptest! {
        #[test]
        fn prop_scalar_add_commutes(a in 0u64..ORDER_Q, b in 0u64..ORDER_Q) {
            prop_assert_eq!(Scalar::new(a) + Scalar::new(b), Scalar::new(b) + Scalar::new(a));
        }

        #[test]
        fn prop_scalar_mul_commutes(a in 0u64..ORDER_Q, b in 0u64..ORDER_Q) {
            prop_assert_eq!(Scalar::new(a) * Scalar::new(b), Scalar::new(b) * Scalar::new(a));
        }

        #[test]
        fn prop_sub_is_add_neg(a in 0u64..ORDER_Q, b in 0u64..ORDER_Q) {
            let (a, b) = (Scalar::new(a), Scalar::new(b));
            prop_assert_eq!(a - b, a + (-b));
        }

        #[test]
        fn prop_exponent_laws(x in 0u64..ORDER_Q, y in 0u64..ORDER_Q) {
            let g = GroupElement::generator();
            let (x, y) = (Scalar::new(x), Scalar::new(y));
            prop_assert_eq!(g.pow(x).mul(g.pow(y)), g.pow(x + y));
            prop_assert_eq!(g.pow(x).pow(y), g.pow(x * y));
        }
    }
}
