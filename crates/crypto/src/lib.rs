//! Cryptographic substrate for the Mahi-Mahi reproduction.
//!
//! The Mahi-Mahi paper relies on three cryptographic building blocks:
//!
//! 1. a collision-resistant hash (the authors use `blake2`) — reimplemented
//!    from scratch in [`blake2b`] against RFC 7693 test vectors;
//! 2. digital signatures on blocks (the authors use `ed25519-consensus`) —
//!    provided by [`schnorr`], a Schnorr signature scheme over a toy
//!    61-bit safe-prime group (structurally faithful, *not* secure at these
//!    parameter sizes; see the crate-level security note below);
//! 3. a *global perfect coin* built from an adaptively-secure threshold
//!    signature — provided by [`coin`], a threshold PRF (BLS-style
//!    "Shamir in the exponent" with Chaum–Pedersen share validity proofs)
//!    over the same group.
//!
//! # Security note
//!
//! This crate exists to reproduce a systems paper, not to protect value.
//! The discrete-log group is 61 bits wide so that exponentiation costs
//! nanoseconds and simulations with hundreds of validators stay fast. A real
//! deployment would swap [`group`] for Ristretto/BLS12-381; every consumer
//! interacts only through the `sign`/`verify`/`combine` interfaces, so the
//! protocol logic above is oblivious to the substitution. This is recorded in
//! `DESIGN.md` §3.
//!
//! # Example
//!
//! ```
//! use mahimahi_crypto::{blake2b::blake2b_256, schnorr::Keypair};
//!
//! let digest = blake2b_256(b"mahi-mahi");
//! let keypair = Keypair::from_seed(7);
//! let signature = keypair.sign(digest.as_bytes());
//! assert!(keypair.public().verify(digest.as_bytes(), &signature).is_ok());
//! ```

pub mod blake2b;
pub mod coin;
pub mod digest;
pub mod dleq;
pub mod group;
pub mod schnorr;
pub mod shamir;

pub use coin::{CoinDealer, CoinPublic, CoinSecret, CoinShare, CoinValue};
pub use digest::Digest;
pub use group::{GroupElement, Scalar};
pub use schnorr::{Keypair, PublicKey, SecretKey, Signature};

use std::error::Error as StdError;
use std::fmt;

/// Errors produced by cryptographic operations in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CryptoError {
    /// A signature failed verification against the given public key.
    InvalidSignature,
    /// A coin share's discrete-log equality proof failed to verify.
    InvalidCoinShare,
    /// Fewer shares were supplied than the reconstruction threshold.
    InsufficientShares {
        /// The reconstruction threshold.
        needed: usize,
        /// How many distinct shares were supplied.
        got: usize,
    },
    /// Two shares for the same share index were supplied.
    DuplicateShare(u64),
    /// A serialized group element or scalar was out of range.
    InvalidEncoding,
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::InvalidSignature => write!(f, "signature verification failed"),
            CryptoError::InvalidCoinShare => write!(f, "coin share proof verification failed"),
            CryptoError::InsufficientShares { needed, got } => {
                write!(f, "insufficient coin shares: needed {needed}, got {got}")
            }
            CryptoError::DuplicateShare(index) => {
                write!(f, "duplicate share for index {index}")
            }
            CryptoError::InvalidEncoding => write!(f, "invalid field or group encoding"),
        }
    }
}

impl StdError for CryptoError {}

/// Encodes bytes as lowercase hex. Used by `Debug`/`Display` impls and tests.
pub fn hex_encode(bytes: &[u8]) -> String {
    const TABLE: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(TABLE[(b >> 4) as usize] as char);
        out.push(TABLE[(b & 0xf) as usize] as char);
    }
    out
}

/// Decodes a lowercase or uppercase hex string into bytes.
///
/// Returns `None` when the input has odd length or contains a non-hex digit.
pub fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let digits = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in digits.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push(((hi << 4) | lo) as u8);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let bytes = [0u8, 1, 0xab, 0xcd, 0xff];
        let encoded = hex_encode(&bytes);
        assert_eq!(encoded, "0001abcdff");
        assert_eq!(hex_decode(&encoded).unwrap(), bytes);
    }

    #[test]
    fn hex_decode_rejects_odd_length() {
        assert!(hex_decode("abc").is_none());
    }

    #[test]
    fn hex_decode_rejects_non_hex() {
        assert!(hex_decode("zz").is_none());
    }

    #[test]
    fn hex_decode_accepts_uppercase() {
        assert_eq!(hex_decode("AB").unwrap(), vec![0xab]);
    }

    #[test]
    fn errors_display() {
        let errors: Vec<CryptoError> = vec![
            CryptoError::InvalidSignature,
            CryptoError::InvalidCoinShare,
            CryptoError::InsufficientShares { needed: 3, got: 2 },
            CryptoError::DuplicateShare(7),
            CryptoError::InvalidEncoding,
        ];
        for error in errors {
            assert!(!error.to_string().is_empty());
        }
    }
}
