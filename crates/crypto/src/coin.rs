//! The global perfect coin (threshold PRF).
//!
//! The paper instantiates its coin with an adaptively-secure threshold BLS
//! signature: each block in the Certify round carries a coin share, and any
//! `2f + 1` shares reconstruct an unpredictable per-round value that elects
//! the round's leader slots *after the fact* (Section 2.3, Section 3.1).
//!
//! This module implements the same shape as a threshold PRF over the toy
//! group: a dealer Shamir-shares a master secret `s`; validator `i` holds
//! `s_i` and publishes a coin share `σ_i = h_r^{s_i}` for round `r`, where
//! `h_r` hashes the round into the group; shares carry Chaum–Pedersen
//! validity proofs against the registered share keys `g^{s_i}`; combining
//! `2f + 1` valid shares with Lagrange coefficients in the exponent yields
//! `h_r^s`, which is hashed into the [`CoinValue`].
//!
//! The paper performs distributed key generation asynchronously
//! (references \[1,2,20,21,30\] in its bibliography); we substitute a trusted
//! dealer, which is orthogonal to the consensus path being reproduced
//! (DESIGN.md §3).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::blake2b::blake2b_256_parts;
use crate::dleq::DleqProof;
use crate::group::{GroupElement, Scalar};
use crate::shamir::{self, Share};
use crate::CryptoError;

const COIN_BASE_DOMAIN: &[u8] = b"mahimahi-coin-base-v1";
const COIN_VALUE_DOMAIN: &[u8] = b"mahimahi-coin-value-v1";

/// Returns the per-round base point `h_r` that coin shares are computed on.
pub fn round_base(round: u64) -> GroupElement {
    GroupElement::hash_to_group(&[COIN_BASE_DOMAIN, &round.to_le_bytes()])
}

/// Trusted dealer for coin setup.
#[derive(Debug)]
pub struct CoinDealer;

impl CoinDealer {
    /// Deals a coin for `total` validators with reconstruction `threshold`
    /// (the protocol uses `threshold = 2f + 1`).
    ///
    /// Returns one [`CoinSecret`] per validator plus the shared
    /// [`CoinPublic`] parameters.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero or exceeds `total`.
    pub fn deal<R: Rng + ?Sized>(
        total: usize,
        threshold: usize,
        rng: &mut R,
    ) -> (Vec<CoinSecret>, CoinPublic) {
        let master = Scalar::random(rng);
        let shares = shamir::share_secret(master, threshold, total, rng);
        let share_keys = shares
            .iter()
            .map(|share| GroupElement::generator().pow(share.value))
            .collect();
        let secrets = shares
            .into_iter()
            .map(|share| CoinSecret { share })
            .collect();
        (
            secrets,
            CoinPublic {
                threshold,
                share_keys,
            },
        )
    }

    /// Deterministic variant of [`CoinDealer::deal`] for reproducible
    /// simulations: all randomness is derived from `seed`.
    pub fn deal_seeded(total: usize, threshold: usize, seed: u64) -> (Vec<CoinSecret>, CoinPublic) {
        // A tiny deterministic splittable generator built on the hash; avoids
        // pulling a specific RNG into the public API.
        struct HashRng {
            seed: u64,
            counter: u64,
        }
        impl rand::RngCore for HashRng {
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }
            fn next_u64(&mut self) -> u64 {
                self.counter += 1;
                let digest = blake2b_256_parts(&[
                    b"mahimahi-coin-dealer-rng",
                    &self.seed.to_le_bytes(),
                    &self.counter.to_le_bytes(),
                ]);
                digest.prefix_u64()
            }
            fn fill_bytes(&mut self, dest: &mut [u8]) {
                for chunk in dest.chunks_mut(8) {
                    let word = self.next_u64().to_le_bytes();
                    chunk.copy_from_slice(&word[..chunk.len()]);
                }
            }
            fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
                self.fill_bytes(dest);
                Ok(())
            }
        }
        let mut rng = HashRng { seed, counter: 0 };
        Self::deal(total, threshold, &mut rng)
    }
}

/// A validator's long-term coin secret.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoinSecret {
    share: Share,
}

impl CoinSecret {
    /// The zero-based authority index this secret belongs to.
    pub fn index(&self) -> u64 {
        self.share.index
    }

    /// Produces this validator's coin share for `round`, including the
    /// validity proof.
    pub fn share_for_round(&self, round: u64) -> CoinShare {
        let base = round_base(round);
        let sigma = base.pow(self.share.value);
        let proof = DleqProof::prove(
            GroupElement::generator(),
            GroupElement::generator().pow(self.share.value),
            base,
            sigma,
            self.share.value,
        );
        CoinShare {
            index: self.share.index,
            sigma,
            proof,
        }
    }
}

impl std::fmt::Debug for CoinSecret {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CoinSecret(index={}, <redacted>)", self.share.index)
    }
}

/// Public coin parameters: the reconstruction threshold and each validator's
/// registered share key `g^{s_i}`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoinPublic {
    threshold: usize,
    share_keys: Vec<GroupElement>,
}

impl CoinPublic {
    /// The number of distinct valid shares required to open the coin.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// The number of validators the coin was dealt to.
    pub fn total(&self) -> usize {
        self.share_keys.len()
    }

    /// Verifies that `share` is a valid coin share for `round` from the
    /// validator it claims to come from.
    ///
    /// # Errors
    ///
    /// [`CryptoError::InvalidCoinShare`] if the index is out of range or the
    /// proof fails.
    pub fn verify_share(&self, round: u64, share: &CoinShare) -> Result<(), CryptoError> {
        let key = self
            .share_keys
            .get(share.index as usize)
            .ok_or(CryptoError::InvalidCoinShare)?;
        share.proof.verify(
            GroupElement::generator(),
            *key,
            round_base(round),
            share.sigma,
        )
    }

    /// Verifies a batch of coin shares for one round, naming the offenders.
    ///
    /// [`CoinPublic::verify_share`] rederives the per-round base point
    /// `h_r` on every call; here it is hashed once for the whole batch and
    /// the proofs are checked through
    /// [`dleq::batch_verify_attributed`](crate::dleq::batch_verify_attributed).
    /// Shares with an out-of-range index are reported as culprits alongside
    /// proof failures.
    ///
    /// # Errors
    ///
    /// Returns the sorted indices (positions in `shares`, not authority
    /// indexes) of every share that fails.
    pub fn verify_shares(&self, round: u64, shares: &[CoinShare]) -> Result<(), Vec<usize>> {
        let base = round_base(round);
        let generator = GroupElement::generator();
        let mut culprits = Vec::new();
        let mut statements = Vec::with_capacity(shares.len());
        let mut positions = Vec::with_capacity(shares.len());
        for (position, share) in shares.iter().enumerate() {
            match self.share_keys.get(share.index as usize) {
                Some(key) => {
                    statements.push((generator, *key, base, share.sigma, share.proof));
                    positions.push(position);
                }
                None => culprits.push(position),
            }
        }
        if let Err(failed) = crate::dleq::batch_verify_attributed(&statements) {
            culprits.extend(failed.into_iter().map(|index| positions[index]));
        }
        if culprits.is_empty() {
            Ok(())
        } else {
            culprits.sort_unstable();
            Err(culprits)
        }
    }

    /// Combines at least `threshold` distinct valid shares into the round's
    /// coin value.
    ///
    /// Shares are verified before use; the combination uses the first
    /// `threshold` shares in index order (any valid subset yields the same
    /// value — this is tested exhaustively for small committees).
    ///
    /// # Errors
    ///
    /// - [`CryptoError::InsufficientShares`] with fewer than `threshold`
    ///   distinct shares;
    /// - [`CryptoError::DuplicateShare`] on repeated indexes;
    /// - [`CryptoError::InvalidCoinShare`] if any used share fails
    ///   verification.
    pub fn combine(&self, round: u64, shares: &[CoinShare]) -> Result<CoinValue, CryptoError> {
        let mut sorted: Vec<&CoinShare> = shares.iter().collect();
        sorted.sort_by_key(|share| share.index);
        for window in sorted.windows(2) {
            if window[0].index == window[1].index {
                return Err(CryptoError::DuplicateShare(window[0].index));
            }
        }
        if sorted.len() < self.threshold {
            return Err(CryptoError::InsufficientShares {
                needed: self.threshold,
                got: sorted.len(),
            });
        }
        sorted.truncate(self.threshold);
        for share in &sorted {
            self.verify_share(round, share)?;
        }
        let xs: Vec<Scalar> = sorted
            .iter()
            .map(|share| Scalar::new(share.index + 1))
            .collect();
        let mut combined = GroupElement::IDENTITY;
        for (i, share) in sorted.iter().enumerate() {
            let lambda = shamir::lagrange_coefficient_at_zero(&xs, i);
            combined = combined.mul(share.sigma.pow(lambda));
        }
        let digest = blake2b_256_parts(&[
            COIN_VALUE_DOMAIN,
            &round.to_le_bytes(),
            &combined.to_bytes(),
        ]);
        Ok(CoinValue {
            round,
            bytes: digest.into_bytes(),
        })
    }
}

/// One validator's coin share for a round, with its validity proof.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoinShare {
    index: u64,
    sigma: GroupElement,
    proof: DleqProof,
}

impl CoinShare {
    /// Byte length of a serialized coin share.
    pub const LENGTH: usize = 32;

    /// The authority index that produced this share.
    pub fn index(&self) -> u64 {
        self.index
    }

    /// The share's group element `h_r^{s_i}`.
    pub fn sigma(&self) -> GroupElement {
        self.sigma
    }

    /// Serializes the share to 32 bytes (index ‖ sigma ‖ proof).
    pub fn to_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        out[..8].copy_from_slice(&self.index.to_le_bytes());
        out[8..16].copy_from_slice(&self.sigma.to_bytes());
        out[16..].copy_from_slice(&self.proof.to_bytes());
        out
    }

    /// Deserializes a share, validating group membership and scalar ranges.
    pub fn from_bytes(bytes: &[u8; 32]) -> Option<Self> {
        let index = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"));
        let sigma = GroupElement::from_bytes(bytes[8..16].try_into().expect("8 bytes"))?;
        let proof = DleqProof::from_bytes(bytes[16..].try_into().expect("16 bytes"))?;
        Some(CoinShare {
            index,
            sigma,
            proof,
        })
    }
}

/// The opened coin value for a round.
///
/// Deterministically elects the round's leader slots (Algorithm 2 line 15:
/// `l ← c + leaderOffset mod committee size`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoinValue {
    round: u64,
    bytes: [u8; 32],
}

impl CoinValue {
    /// The round this value opens.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Raw entropy bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.bytes
    }

    /// The base leader index `c` for a committee of `committee_size`.
    pub fn base_leader(&self, committee_size: usize) -> u64 {
        assert!(committee_size > 0, "committee cannot be empty");
        u64::from_le_bytes(self.bytes[..8].try_into().expect("8 bytes")) % committee_size as u64
    }

    /// The authority filling leader slot `leader_offset` of the round
    /// (`(c + leader_offset) mod committee_size`).
    pub fn leader_slot(&self, leader_offset: usize, committee_size: usize) -> u64 {
        (self.base_leader(committee_size) + leader_offset as u64) % committee_size as u64
    }

    /// Constructs a coin value directly from bytes (test/adversary use).
    pub fn from_bytes(round: u64, bytes: [u8; 32]) -> Self {
        CoinValue { round, bytes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dealt(n: usize, threshold: usize) -> (Vec<CoinSecret>, CoinPublic) {
        CoinDealer::deal_seeded(n, threshold, 42)
    }

    #[test]
    fn shares_verify() {
        let (secrets, public) = dealt(4, 3);
        for secret in &secrets {
            let share = secret.share_for_round(7);
            assert!(public.verify_share(7, &share).is_ok());
        }
    }

    #[test]
    fn share_for_wrong_round_rejected() {
        let (secrets, public) = dealt(4, 3);
        let share = secrets[0].share_for_round(7);
        assert_eq!(
            public.verify_share(8, &share),
            Err(CryptoError::InvalidCoinShare)
        );
    }

    #[test]
    fn batched_share_verification_matches_per_share() {
        let (secrets, public) = dealt(4, 3);
        let mut shares: Vec<CoinShare> = secrets.iter().map(|s| s.share_for_round(7)).collect();
        assert!(public.verify_shares(7, &shares).is_ok());
        assert!(public.verify_shares(7, &[]).is_ok());

        // Poison one share with a wrong-round sigma and one with an
        // out-of-range index: both must be named.
        shares[1] = secrets[1].share_for_round(8);
        shares[3].index = 17;
        assert_eq!(public.verify_shares(7, &shares), Err(vec![1, 3]));
        for (position, share) in shares.iter().enumerate() {
            assert_eq!(
                public.verify_share(7, share).is_ok(),
                ![1, 3].contains(&position)
            );
        }
    }

    #[test]
    fn any_threshold_subset_combines_to_same_value() {
        let (secrets, public) = dealt(4, 3);
        let shares: Vec<CoinShare> = secrets.iter().map(|s| s.share_for_round(5)).collect();
        let mut values = Vec::new();
        for a in 0..4 {
            for b in (a + 1)..4 {
                for c in (b + 1)..4 {
                    let subset = [shares[a], shares[b], shares[c]];
                    values.push(public.combine(5, &subset).unwrap());
                }
            }
        }
        for value in &values {
            assert_eq!(value, &values[0]);
        }
    }

    #[test]
    fn extra_shares_do_not_change_the_value() {
        let (secrets, public) = dealt(7, 5);
        let shares: Vec<CoinShare> = secrets.iter().map(|s| s.share_for_round(9)).collect();
        let with_five = public.combine(9, &shares[..5]).unwrap();
        let with_seven = public.combine(9, &shares).unwrap();
        assert_eq!(with_five, with_seven);
    }

    #[test]
    fn different_rounds_produce_different_values() {
        let (secrets, public) = dealt(4, 3);
        let value5 = public
            .combine(
                5,
                &secrets
                    .iter()
                    .map(|s| s.share_for_round(5))
                    .collect::<Vec<_>>(),
            )
            .unwrap();
        let value6 = public
            .combine(
                6,
                &secrets
                    .iter()
                    .map(|s| s.share_for_round(6))
                    .collect::<Vec<_>>(),
            )
            .unwrap();
        assert_ne!(value5.as_bytes(), value6.as_bytes());
    }

    #[test]
    fn insufficient_shares_error() {
        let (secrets, public) = dealt(4, 3);
        let shares: Vec<CoinShare> = secrets[..2].iter().map(|s| s.share_for_round(5)).collect();
        assert_eq!(
            public.combine(5, &shares),
            Err(CryptoError::InsufficientShares { needed: 3, got: 2 })
        );
    }

    #[test]
    fn duplicate_share_error() {
        let (secrets, public) = dealt(4, 3);
        let share = secrets[0].share_for_round(5);
        let shares = [share, share, secrets[1].share_for_round(5)];
        assert_eq!(
            public.combine(5, &shares),
            Err(CryptoError::DuplicateShare(0))
        );
    }

    #[test]
    fn forged_share_rejected_in_combine() {
        let (secrets, public) = dealt(4, 3);
        let mut shares: Vec<CoinShare> = secrets.iter().map(|s| s.share_for_round(5)).collect();
        // Replace sigma with a random element, keeping the (now stale) proof.
        shares[0].sigma = GroupElement::generator().pow(Scalar::new(12345));
        assert_eq!(
            public.combine(5, &shares[..3]),
            Err(CryptoError::InvalidCoinShare)
        );
    }

    #[test]
    fn share_from_unknown_index_rejected() {
        let (secrets, public) = dealt(4, 3);
        let mut share = secrets[0].share_for_round(5);
        share.index = 17;
        assert_eq!(
            public.verify_share(5, &share),
            Err(CryptoError::InvalidCoinShare)
        );
    }

    #[test]
    fn leader_slots_are_in_range_and_sequential() {
        let (secrets, public) = dealt(4, 3);
        let shares: Vec<CoinShare> = secrets.iter().map(|s| s.share_for_round(11)).collect();
        let value = public.combine(11, &shares[..3]).unwrap();
        let base = value.base_leader(4);
        assert!(base < 4);
        for offset in 0..4 {
            assert_eq!(value.leader_slot(offset, 4), (base + offset as u64) % 4);
        }
    }

    #[test]
    fn dealing_is_deterministic_per_seed() {
        let (a_secrets, a_public) = CoinDealer::deal_seeded(4, 3, 1);
        let (b_secrets, b_public) = CoinDealer::deal_seeded(4, 3, 1);
        let (c_secrets, _) = CoinDealer::deal_seeded(4, 3, 2);
        assert_eq!(a_public, b_public);
        assert_eq!(
            a_secrets[0].share_for_round(3),
            b_secrets[0].share_for_round(3)
        );
        assert_ne!(
            a_secrets[0].share_for_round(3),
            c_secrets[0].share_for_round(3)
        );
    }

    #[test]
    fn random_rng_dealing_works() {
        let mut rng = StdRng::seed_from_u64(77);
        let (secrets, public) = CoinDealer::deal(10, 7, &mut rng);
        let shares: Vec<CoinShare> = secrets.iter().map(|s| s.share_for_round(1)).collect();
        assert!(public.combine(1, &shares[3..10]).is_ok());
    }

    #[test]
    fn coin_secret_debug_redacts() {
        let (secrets, _) = dealt(4, 3);
        let repr = format!("{:?}", secrets[0]);
        assert!(repr.contains("redacted"));
    }

    #[test]
    fn leader_distribution_is_roughly_uniform() {
        // Sanity: over many rounds the base leader hits every authority.
        let (secrets, public) = dealt(4, 3);
        let mut counts = [0usize; 4];
        for round in 0..200 {
            let shares: Vec<CoinShare> = secrets.iter().map(|s| s.share_for_round(round)).collect();
            let value = public.combine(round, &shares[..3]).unwrap();
            counts[value.base_leader(4) as usize] += 1;
        }
        for count in counts {
            assert!(count > 20, "distribution skew: {counts:?}");
        }
    }
}
