//! Shamir secret sharing over the scalar field, used by the threshold coin.
//!
//! The paper's coin requires that any `2f + 1` validators can reconstruct the
//! per-round randomness while `2f` cannot. The dealer samples a polynomial of
//! degree `threshold - 1` whose constant term is the master secret and hands
//! validator `i` the evaluation at `x = i + 1`.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::group::Scalar;
use crate::CryptoError;

/// One share of a Shamir-shared secret: the evaluation of the dealer's
/// polynomial at `x = index + 1` (indexes are zero-based authority indexes,
/// shifted so that `x = 0`, the secret itself, is never dealt).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Share {
    /// The zero-based share index (authority index).
    pub index: u64,
    /// The polynomial evaluation `P(index + 1)`.
    pub value: Scalar,
}

impl Share {
    /// The field point this share was evaluated at.
    pub fn x(&self) -> Scalar {
        Scalar::new(self.index + 1)
    }
}

/// A polynomial over the scalar field, stored by coefficients
/// (constant term first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Polynomial {
    coefficients: Vec<Scalar>,
}

impl Polynomial {
    /// Samples a random polynomial of the given `degree` with the supplied
    /// constant term.
    pub fn random<R: Rng + ?Sized>(degree: usize, constant: Scalar, rng: &mut R) -> Self {
        let mut coefficients = Vec::with_capacity(degree + 1);
        coefficients.push(constant);
        for _ in 0..degree {
            coefficients.push(Scalar::random(rng));
        }
        Polynomial { coefficients }
    }

    /// The polynomial's degree (number of coefficients minus one).
    pub fn degree(&self) -> usize {
        self.coefficients.len() - 1
    }

    /// Evaluates the polynomial at `x` (Horner's method).
    pub fn evaluate(&self, x: Scalar) -> Scalar {
        let mut acc = Scalar::ZERO;
        for &coefficient in self.coefficients.iter().rev() {
            acc = acc * x + coefficient;
        }
        acc
    }
}

/// Splits `secret` into `total` shares such that any `threshold` reconstruct
/// it and fewer reveal nothing.
///
/// # Panics
///
/// Panics if `threshold` is zero or exceeds `total`.
pub fn share_secret<R: Rng + ?Sized>(
    secret: Scalar,
    threshold: usize,
    total: usize,
    rng: &mut R,
) -> Vec<Share> {
    assert!(threshold >= 1, "threshold must be at least 1");
    assert!(threshold <= total, "threshold cannot exceed share count");
    let polynomial = Polynomial::random(threshold - 1, secret, rng);
    (0..total as u64)
        .map(|index| Share {
            index,
            value: polynomial.evaluate(Scalar::new(index + 1)),
        })
        .collect()
}

/// Computes the Lagrange coefficient `λ_i` for interpolating at `x = 0` from
/// the share points `xs`, for the point at position `i`.
///
/// `λ_i = Π_{j ≠ i} x_j / (x_j − x_i)`.
pub fn lagrange_coefficient_at_zero(xs: &[Scalar], i: usize) -> Scalar {
    let mut numerator = Scalar::ONE;
    let mut denominator = Scalar::ONE;
    for (j, &xj) in xs.iter().enumerate() {
        if j == i {
            continue;
        }
        numerator *= xj;
        denominator *= xj - xs[i];
    }
    numerator
        * denominator
            .inverse()
            .expect("share points are distinct and non-zero")
}

/// Reconstructs the secret from exactly `threshold` distinct shares.
///
/// # Errors
///
/// Returns [`CryptoError::InsufficientShares`] if fewer than `threshold`
/// shares are supplied, and [`CryptoError::DuplicateShare`] if two shares
/// carry the same index. Extra shares beyond `threshold` are ignored (the
/// first `threshold` in index order are used).
pub fn reconstruct_secret(shares: &[Share], threshold: usize) -> Result<Scalar, CryptoError> {
    let mut sorted: Vec<Share> = shares.to_vec();
    sorted.sort_by_key(|share| share.index);
    for window in sorted.windows(2) {
        if window[0].index == window[1].index {
            return Err(CryptoError::DuplicateShare(window[0].index));
        }
    }
    if sorted.len() < threshold {
        return Err(CryptoError::InsufficientShares {
            needed: threshold,
            got: sorted.len(),
        });
    }
    sorted.truncate(threshold);
    let xs: Vec<Scalar> = sorted.iter().map(Share::x).collect();
    let mut secret = Scalar::ZERO;
    for (i, share) in sorted.iter().enumerate() {
        secret += lagrange_coefficient_at_zero(&xs, i) * share.value;
    }
    Ok(secret)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reconstructs_from_exactly_threshold_shares() {
        let mut rng = StdRng::seed_from_u64(3);
        let secret = Scalar::new(123456);
        let shares = share_secret(secret, 3, 7, &mut rng);
        assert_eq!(reconstruct_secret(&shares[..3], 3).unwrap(), secret);
        assert_eq!(reconstruct_secret(&shares[2..5], 3).unwrap(), secret);
        assert_eq!(reconstruct_secret(&shares[4..], 3).unwrap(), secret);
    }

    #[test]
    fn any_subset_of_threshold_shares_agrees() {
        let mut rng = StdRng::seed_from_u64(4);
        let secret = Scalar::new(987);
        let shares = share_secret(secret, 3, 5, &mut rng);
        for a in 0..5 {
            for b in (a + 1)..5 {
                for c in (b + 1)..5 {
                    let subset = [shares[a], shares[b], shares[c]];
                    assert_eq!(reconstruct_secret(&subset, 3).unwrap(), secret);
                }
            }
        }
    }

    #[test]
    fn too_few_shares_fail() {
        let mut rng = StdRng::seed_from_u64(5);
        let shares = share_secret(Scalar::new(1), 4, 7, &mut rng);
        assert_eq!(
            reconstruct_secret(&shares[..3], 4),
            Err(CryptoError::InsufficientShares { needed: 4, got: 3 })
        );
    }

    #[test]
    fn duplicate_shares_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let shares = share_secret(Scalar::new(1), 2, 3, &mut rng);
        let duplicated = [shares[0], shares[0], shares[1]];
        assert_eq!(
            reconstruct_secret(&duplicated, 2),
            Err(CryptoError::DuplicateShare(0))
        );
    }

    #[test]
    fn wrong_share_changes_secret() {
        let mut rng = StdRng::seed_from_u64(7);
        let secret = Scalar::new(55);
        let mut shares = share_secret(secret, 2, 3, &mut rng);
        shares[0].value += Scalar::ONE;
        assert_ne!(reconstruct_secret(&shares[..2], 2).unwrap(), secret);
    }

    #[test]
    fn threshold_one_is_the_secret_everywhere() {
        let mut rng = StdRng::seed_from_u64(8);
        let secret = Scalar::new(42);
        let shares = share_secret(secret, 1, 4, &mut rng);
        for share in shares {
            assert_eq!(share.value, secret);
        }
    }

    #[test]
    fn polynomial_evaluation_matches_manual() {
        // P(x) = 3 + 2x + x^2
        let polynomial = Polynomial {
            coefficients: vec![Scalar::new(3), Scalar::new(2), Scalar::new(1)],
        };
        assert_eq!(polynomial.degree(), 2);
        assert_eq!(polynomial.evaluate(Scalar::new(0)), Scalar::new(3));
        assert_eq!(polynomial.evaluate(Scalar::new(1)), Scalar::new(6));
        assert_eq!(polynomial.evaluate(Scalar::new(10)), Scalar::new(123));
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn zero_threshold_panics() {
        let mut rng = StdRng::seed_from_u64(9);
        let _ = share_secret(Scalar::new(1), 0, 3, &mut rng);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn threshold_above_total_panics() {
        let mut rng = StdRng::seed_from_u64(10);
        let _ = share_secret(Scalar::new(1), 4, 3, &mut rng);
    }

    proptest! {
        #[test]
        fn prop_reconstruction(secret in 0u64.., threshold in 1usize..6, extra in 0usize..4) {
            let total = threshold + extra;
            let mut rng = StdRng::seed_from_u64(secret.wrapping_mul(31));
            let secret = Scalar::new(secret);
            let shares = share_secret(secret, threshold, total, &mut rng);
            prop_assert_eq!(reconstruct_secret(&shares, threshold).unwrap(), secret);
        }
    }
}
