//! Test and simulation utility for constructing DAGs with precise control.
//!
//! Committer tests need DAGs with specific shapes: crashed authors, blocks
//! that omit particular references, equivocations referenced by chosen
//! subsets of the next round (as in Figure 2 of the paper). [`DagBuilder`]
//! produces *valid, signed* blocks — everything it builds passes
//! [`Block::verify`] — so the committers under test see exactly what a real
//! validator would.

use mahimahi_types::{
    AuthorityIndex, Block, BlockBuilder, BlockRef, Round, TestCommittee, Transaction,
};
use std::collections::HashMap;
use std::sync::Arc;

use crate::store::BlockStore;

/// How a [`BlockSpec`] chooses its parents.
#[derive(Debug, Clone)]
enum Parents {
    /// Reference every block of the previous round (all equivocations).
    FullPrevious,
    /// Reference the previous-round blocks of these authors (first
    /// equivocation only). Must include the spec's own author.
    Authors(Vec<u32>),
    /// Exact ordered references; the builder moves the author's own
    /// previous-round block to the front if it is not already first.
    Explicit(Vec<BlockRef>),
}

/// Specification of one block for [`DagBuilder::add_round`].
#[derive(Debug, Clone)]
pub struct BlockSpec {
    author: u32,
    parents: Parents,
    transactions: Vec<Transaction>,
    tag: u64,
}

impl BlockSpec {
    /// A block by `author` referencing the full previous round.
    pub fn new(author: u32) -> Self {
        BlockSpec {
            author,
            parents: Parents::FullPrevious,
            transactions: Vec::new(),
            tag: 0,
        }
    }

    /// Restricts parents to the previous-round blocks of `authors`.
    ///
    /// The block's own previous block is always referenced first, whether or
    /// not the author appears in the list.
    pub fn with_parent_authors(mut self, authors: Vec<u32>) -> Self {
        self.parents = Parents::Authors(authors);
        self
    }

    /// Uses exact parent references (for targeting specific equivocations).
    ///
    /// If the first reference is the author's own previous-round block, the
    /// list is used verbatim — this is how an equivocating author extends a
    /// chosen equivocation. Otherwise the author's recorded tip is moved to
    /// the front.
    pub fn with_explicit_parents(mut self, parents: Vec<BlockRef>) -> Self {
        self.parents = Parents::Explicit(parents);
        self
    }

    /// Adds transactions to the block.
    pub fn with_transactions(mut self, transactions: Vec<Transaction>) -> Self {
        self.transactions = transactions;
        self
    }

    /// Sets a tag that perturbs the block content, producing distinct
    /// digests for equivocating blocks of the same author and round.
    pub fn with_tag(mut self, tag: u64) -> Self {
        self.tag = tag;
        self
    }
}

/// Builds global DAGs round by round for tests and analysis.
///
/// The builder maintains one shared [`BlockStore`] representing an
/// omniscient observer's view; simulations with per-validator views live in
/// `mahimahi-sim` instead.
pub struct DagBuilder {
    setup: TestCommittee,
    store: BlockStore,
    /// Each author's latest block reference (their chain tip).
    tips: Vec<BlockRef>,
    round: Round,
}

impl DagBuilder {
    /// Creates a builder over a provisioned committee, seeded at round 0.
    pub fn new(setup: TestCommittee) -> Self {
        let committee = setup.committee();
        let store = BlockStore::new(committee.size(), committee.quorum_threshold());
        let tips = Block::all_genesis(committee.size())
            .iter()
            .map(Block::reference)
            .collect();
        DagBuilder {
            setup,
            store,
            tips,
            round: 0,
        }
    }

    /// The committee setup backing this builder.
    pub fn setup(&self) -> &TestCommittee {
        &self.setup
    }

    /// The last completed round.
    pub fn current_round(&self) -> Round {
        self.round
    }

    /// The latest block reference of `author`.
    pub fn tip(&self, author: u32) -> BlockRef {
        self.tips[author as usize]
    }

    /// Read access to the underlying store.
    pub fn store(&self) -> &BlockStore {
        &self.store
    }

    /// Mutable access to the underlying store (garbage-collection tests).
    pub fn store_mut(&mut self) -> &mut BlockStore {
        &mut self.store
    }

    /// Consumes the builder, returning the store.
    pub fn into_store(self) -> BlockStore {
        self.store
    }

    /// Adds a round in which every authority references every block of the
    /// previous round. Returns the new references in author order.
    pub fn add_full_round(&mut self) -> Vec<BlockRef> {
        let specs = (0..self.setup.committee().size() as u32)
            .map(BlockSpec::new)
            .collect();
        self.add_round(specs)
    }

    /// Adds `count` consecutive full rounds.
    pub fn add_full_rounds(&mut self, count: usize) -> Vec<Vec<BlockRef>> {
        (0..count).map(|_| self.add_full_round()).collect()
    }

    /// Adds a round where only `producers` make blocks, each referencing the
    /// full previous round. Models benign crashes of the other authorities.
    pub fn add_round_producers(&mut self, producers: &[u32]) -> Vec<BlockRef> {
        let specs = producers
            .iter()
            .map(|&author| BlockSpec::new(author))
            .collect();
        self.add_round(specs)
    }

    /// Adds `count` consecutive rounds produced only by `producers`.
    pub fn add_full_rounds_producers(
        &mut self,
        producers: &[u32],
        count: usize,
    ) -> Vec<Vec<BlockRef>> {
        (0..count)
            .map(|_| self.add_round_producers(producers))
            .collect()
    }

    /// Adds a round of explicitly specified blocks. Returns references in
    /// spec order.
    ///
    /// # Panics
    ///
    /// Panics if a produced block fails validation (a bug in the spec, e.g.
    /// referencing fewer than `2f + 1` previous-round authors) or if a spec
    /// author produced no block in the previous round (it cannot extend its
    /// chain).
    pub fn add_round(&mut self, specs: Vec<BlockSpec>) -> Vec<BlockRef> {
        let round = self.round + 1;
        let mut new_refs = Vec::with_capacity(specs.len());
        let mut new_tips: HashMap<u32, BlockRef> = HashMap::new();
        for spec in specs {
            let block = self.make_block(round, &spec);
            let reference = block.reference();
            self.store
                .insert(block)
                .expect("builder blocks have in-range authors");
            // First block per author becomes the tip (equivocations keep the
            // first so later rounds deterministically extend one chain).
            new_tips.entry(spec.author).or_insert(reference);
            new_refs.push(reference);
        }
        for (author, reference) in new_tips {
            self.tips[author as usize] = reference;
        }
        self.round = round;
        new_refs
    }

    /// Constructs (signs, validates) a block for `round` per `spec` without
    /// inserting it. Exposed for simulations that manage their own stores.
    fn make_block(&self, round: Round, spec: &BlockSpec) -> Arc<Block> {
        let author = AuthorityIndex(spec.author);
        // An explicit list whose head is already an own previous-round block
        // selects that block as the chain to extend (equivocation control).
        if let Parents::Explicit(explicit) = &spec.parents {
            if let Some(first) = explicit.first() {
                if first.author == author && first.round == round - 1 {
                    return self.sign_spec(round, spec, explicit.clone());
                }
            }
        }
        let own_tip = self.tips[spec.author as usize];
        assert_eq!(
            own_tip.round,
            round - 1,
            "author v{} has no block at round {} to extend",
            spec.author,
            round - 1
        );
        let mut parents = vec![own_tip];
        match &spec.parents {
            Parents::FullPrevious => {
                for block in self.store.blocks_at_round(round - 1) {
                    let reference = block.reference();
                    if reference != own_tip {
                        parents.push(reference);
                    }
                }
            }
            Parents::Authors(authors) => {
                for &parent_author in authors {
                    if parent_author == spec.author {
                        continue;
                    }
                    let slot_blocks = self.store.blocks_in_slot(mahimahi_types::Slot::new(
                        round - 1,
                        AuthorityIndex(parent_author),
                    ));
                    let first = slot_blocks.first().unwrap_or_else(|| {
                        panic!("no block by v{parent_author} at round {}", round - 1)
                    });
                    parents.push(first.reference());
                }
            }
            Parents::Explicit(explicit) => {
                for reference in explicit {
                    if *reference != own_tip {
                        parents.push(*reference);
                    }
                }
            }
        }
        self.sign_spec(round, spec, parents)
    }

    fn sign_spec(&self, round: Round, spec: &BlockSpec, parents: Vec<BlockRef>) -> Arc<Block> {
        // Order-preserving dedup: specs may list a reference twice (e.g. an
        // explicit list that repeats the author's own previous block).
        let mut seen = std::collections::HashSet::with_capacity(parents.len());
        let parents: Vec<BlockRef> = parents
            .into_iter()
            .filter(|reference| seen.insert(*reference))
            .collect();
        let mut builder = BlockBuilder::new(AuthorityIndex(spec.author), round)
            .parents(parents)
            .transactions(spec.transactions.iter().cloned());
        if spec.tag != 0 {
            builder = builder.transaction(Transaction::new(spec.tag.to_le_bytes().to_vec()));
        }
        let block = builder.build(&self.setup);
        debug_assert_eq!(
            block.verify(self.setup.committee()),
            Ok(()),
            "DagBuilder produced an invalid block"
        );
        block.into_arc()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn builder() -> DagBuilder {
        DagBuilder::new(TestCommittee::new(4, 9))
    }

    #[test]
    fn full_rounds_grow_the_dag() {
        let mut dag = builder();
        dag.add_full_rounds(3);
        assert_eq!(dag.current_round(), 3);
        assert_eq!(dag.store().len(), 4 + 12);
        for round in 1..=3 {
            assert_eq!(dag.store().blocks_at_round(round).len(), 4);
        }
    }

    #[test]
    fn produced_blocks_are_valid() {
        let mut dag = builder();
        let refs = dag.add_full_round();
        let committee = dag.setup().committee().clone();
        for reference in refs {
            let block = dag.store().get(&reference).unwrap();
            assert_eq!(block.verify(&committee), Ok(()));
        }
    }

    #[test]
    fn partial_round_producers() {
        let mut dag = builder();
        dag.add_full_round();
        let refs = dag.add_round_producers(&[0, 1, 2]);
        assert_eq!(refs.len(), 3);
        assert_eq!(dag.store().blocks_at_round(2).len(), 3);
        assert_eq!(
            dag.store()
                .authorities_at_round(2)
                .iter()
                .collect::<Vec<_>>(),
            vec![AuthorityIndex(0), AuthorityIndex(1), AuthorityIndex(2)]
        );
    }

    #[test]
    fn equivocations_via_tags() {
        let mut dag = builder();
        dag.add_full_round();
        let refs = dag.add_round(vec![
            BlockSpec::new(0),
            BlockSpec::new(1).with_tag(1),
            BlockSpec::new(1).with_tag(2),
            BlockSpec::new(2),
            BlockSpec::new(3),
        ]);
        assert_eq!(refs.len(), 5);
        assert_ne!(refs[1].digest, refs[2].digest);
        assert_eq!(
            dag.store()
                .blocks_in_slot(mahimahi_types::Slot::new(2, AuthorityIndex(1)))
                .len(),
            2
        );
    }

    #[test]
    fn tips_track_first_equivocation() {
        let mut dag = builder();
        dag.add_full_round();
        let refs = dag.add_round(vec![
            BlockSpec::new(0),
            BlockSpec::new(1).with_tag(1),
            BlockSpec::new(1).with_tag(2),
            BlockSpec::new(2),
            BlockSpec::new(3),
        ]);
        assert_eq!(dag.tip(1), refs[1]);
    }

    #[test]
    #[should_panic(expected = "no block at round")]
    fn extending_a_crashed_author_panics() {
        let mut dag = builder();
        dag.add_full_round();
        dag.add_round_producers(&[0, 1, 2]); // author 3 crashed
                                             // Author 3 cannot produce at round 3: no own block at round 2.
        dag.add_round(vec![BlockSpec::new(3)]);
    }

    #[test]
    fn parent_authors_implicitly_include_self() {
        let mut dag = builder();
        let r1 = dag.add_full_round();
        let refs = dag.add_round(vec![BlockSpec::new(0).with_parent_authors(vec![1, 2, 3])]);
        let block = dag.store().get(&refs[0]).unwrap();
        assert_eq!(block.parents()[0], r1[0]);
        assert_eq!(block.parents().len(), 4);
    }

    #[test]
    fn explicit_parents_reorder_own_first() {
        let mut dag = builder();
        let r1 = dag.add_full_round();
        // Give parents with own block NOT first; builder must fix the order.
        let refs = dag.add_round(vec![
            BlockSpec::new(2).with_explicit_parents(vec![r1[0], r1[1], r1[2], r1[3]])
        ]);
        let block = dag.store().get(&refs[0]).unwrap();
        assert_eq!(block.parents()[0], r1[2]);
        assert_eq!(block.parents().len(), 4);
    }

    #[test]
    fn transactions_are_carried() {
        let mut dag = builder();
        let refs = dag.add_round(vec![BlockSpec::new(0)
            .with_transactions(vec![Transaction::benchmark(7), Transaction::benchmark(8)])]);
        // Round 1 needs a quorum; spec defaults to full previous round, so
        // this single-producer round is still valid.
        let block = dag.store().get(&refs[0]).unwrap();
        assert_eq!(block.transactions().len(), 2);
    }
}
