//! DAG traversal helpers (Algorithm 3 of the paper).
//!
//! - `VotedBlock` / `IsVote`: which block of a slot a potential vote block
//!   supports — the **first** block of that slot encountered in a depth-first
//!   traversal following the parent order. This is the mechanism that makes
//!   the uncertified DAG tolerate equivocation (Observation 1: a block
//!   cannot vote for two blocks of the same slot).
//! - `IsCert`: a block certifies a leader block if at least `2f + 1` of its
//!   parents (by distinct author) vote for that leader.
//! - `IsLink`: plain reachability through parent references.
//! - `LinearizeSubDags`: the commit-sequence expansion of DagRider used in
//!   Step 5 of the decision rule.

use mahimahi_types::{AuthoritySet, Block, BlockRef, Slot};
use std::collections::HashSet;
use std::sync::Arc;

use crate::store::{BlockIdx, BlockStore};

impl BlockStore {
    /// `VotedBlock(b, id, r)` from Algorithm 3: the first block of `slot`
    /// encountered when depth-first-searching from `vote` following parent
    /// order, or `None` if the slot is unreachable.
    ///
    /// Results are memoized; the memo is sound because stored blocks are
    /// causally complete and immutable.
    pub fn voted_block(&self, vote: &BlockRef, slot: Slot) -> Option<BlockRef> {
        let index = self.index_of(vote)?;
        self.voted_block_idx(index, slot)
            .map(|found| self.stored(found).block.reference())
    }

    fn voted_block_idx(&self, index: BlockIdx, slot: Slot) -> Option<BlockIdx> {
        let stored = self.stored(index);
        // Prune: a block can only reach strictly older rounds.
        if slot.round >= stored.block.round() {
            return None;
        }
        if let Some(&cached) = self.vote_cache.lock().get(&(index, slot)) {
            return cached;
        }
        let mut result = None;
        for &parent in &self.stored(index).parents {
            let parent_block = &self.stored(parent).block;
            if parent_block.slot() == slot {
                result = Some(parent);
                break;
            }
            if let Some(found) = self.voted_block_idx(parent, slot) {
                result = Some(found);
                break;
            }
        }
        self.vote_cache.lock().insert((index, slot), result);
        result
    }

    /// `IsVote(b_vote, b_leader)`: whether `vote` supports exactly `leader`
    /// among the (possibly equivocating) blocks of the leader's slot.
    pub fn is_vote(&self, vote: &BlockRef, leader: &Block) -> bool {
        self.voted_block(vote, leader.slot()) == Some(leader.reference())
    }

    /// `IsCert(b_cert, b_leader)`: whether `certificate` carries `2f + 1`
    /// parent votes (by distinct author) for `leader`.
    ///
    /// Results are memoized per (certificate, leader) pair when both blocks
    /// are stored; like votes, certificates are a pure function of
    /// immutable causal histories.
    pub fn is_cert(&self, certificate: &Block, leader: &Block) -> bool {
        let key = match (
            self.index_of(&certificate.reference()),
            self.index_of(&leader.reference()),
        ) {
            (Some(cert_index), Some(leader_index)) => {
                if let Some(&cached) = self.cert_cache.lock().get(&(cert_index, leader_index)) {
                    return cached;
                }
                Some((cert_index, leader_index))
            }
            _ => None,
        };
        let mut result = false;
        let mut vote_authors = AuthoritySet::new();
        for parent in certificate.parents() {
            if self.is_vote(parent, leader) {
                vote_authors.insert(parent.author);
                if vote_authors.len() >= self.quorum_threshold() {
                    result = true;
                    break;
                }
            }
        }
        if let Some(key) = key {
            self.cert_cache.lock().insert(key, result);
        }
        result
    }

    /// `IsLink(b_old, b_new)`: whether a path of parent references leads
    /// from `new` back to `old`. A block links to itself.
    pub fn is_link(&self, old: &BlockRef, new: &BlockRef) -> bool {
        if old == new {
            return self.contains(old);
        }
        let (Some(old_index), Some(new_index)) = (self.index_of(old), self.index_of(new)) else {
            return false;
        };
        let mut visited = HashSet::new();
        let mut frontier = vec![new_index];
        while let Some(index) = frontier.pop() {
            if index == old_index {
                return true;
            }
            if !visited.insert(index) {
                continue;
            }
            let stored = self.stored(index);
            // Prune: parents at or below the target round cannot reach it
            // (other than the target itself, matched above).
            if stored.block.round() <= old.round {
                continue;
            }
            frontier.extend(stored.parents.iter().copied());
        }
        false
    }

    /// All block references in the causal history of `from` (inclusive).
    pub fn causal_history(&self, from: &BlockRef) -> Vec<BlockRef> {
        let Some(start) = self.index_of(from) else {
            return Vec::new();
        };
        let mut visited = HashSet::new();
        let mut frontier = vec![start];
        let mut history = Vec::new();
        while let Some(index) = frontier.pop() {
            if !visited.insert(index) {
                continue;
            }
            let stored = self.stored(index);
            history.push(stored.block.reference());
            frontier.extend(stored.parents.iter().copied());
        }
        history.sort();
        history
    }

    /// One step of `LinearizeSubDags` (Algorithm 3): every block in the
    /// causal history of `leader` not already in `emitted`, in the
    /// deterministic order `(round, author, digest)`, ending with the leader
    /// itself. Emitted blocks are added to `emitted`.
    pub fn linearize_sub_dag(
        &self,
        leader: &BlockRef,
        emitted: &mut HashSet<BlockRef>,
    ) -> Vec<Arc<Block>> {
        self.linearize_sub_dag_floored(leader, emitted, 0)
    }

    /// [`BlockStore::linearize_sub_dag`] with a garbage-collection floor:
    /// blocks with `round < floor` are excluded from the output and not
    /// descended into.
    ///
    /// The floor must be a *deterministic function of the leader's round*
    /// (e.g. `leader.round − gc_depth`) so that every honest validator
    /// excludes exactly the same stale blocks regardless of when each one
    /// physically compacts its store — this is what makes
    /// [`BlockStore::compact`] safe.
    pub fn linearize_sub_dag_floored(
        &self,
        leader: &BlockRef,
        emitted: &mut HashSet<BlockRef>,
        floor: mahimahi_types::Round,
    ) -> Vec<Arc<Block>> {
        let Some(start) = self.index_of(leader) else {
            return Vec::new();
        };
        let mut visited = HashSet::new();
        let mut frontier = vec![start];
        let mut fresh = Vec::new();
        while let Some(index) = frontier.pop() {
            if !visited.insert(index) {
                continue;
            }
            let stored = self.stored(index);
            let reference = stored.block.reference();
            if reference.round < floor || emitted.contains(&reference) {
                // Below the GC floor, or its whole history was linearized
                // with an earlier leader.
                continue;
            }
            fresh.push(reference);
            frontier.extend(stored.parents.iter().copied());
        }
        fresh.sort();
        fresh
            .into_iter()
            .map(|reference| {
                emitted.insert(reference);
                self.get(&reference).expect("collected from store").clone()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{BlockSpec, DagBuilder};
    use mahimahi_types::{AuthorityIndex, TestCommittee};

    fn builder() -> DagBuilder {
        DagBuilder::new(TestCommittee::new(4, 5))
    }

    #[test]
    fn vote_follows_first_encounter_order() {
        let mut dag = builder();
        let r1 = dag.add_full_round();
        let _r2 = dag.add_full_round();
        let r3 = dag.add_full_round();
        let store = dag.store();
        // In a full DAG every later block reaches every earlier block, so
        // each round-3 block votes for every round-1 slot's unique block.
        for vote in &r3 {
            for leader_ref in &r1 {
                let leader = store.get(leader_ref).unwrap().clone();
                assert!(store.is_vote(vote, &leader));
            }
        }
    }

    #[test]
    fn vote_misses_unreferenced_block() {
        let mut dag = builder();
        let r1 = dag.add_full_round();
        // Round 2: everyone references only authors {0,1,2} from round 1
        // (plus, implicitly, their own previous block).
        let specs: Vec<BlockSpec> = (0..4)
            .map(|author| BlockSpec::new(author).with_parent_authors(vec![0, 1, 2]))
            .collect();
        let r2 = dag.add_round(specs);
        let store = dag.store();
        let skipped_leader = store.get(&r1[3]).unwrap().clone();
        // Authors 0..2 never reference v3's round-1 block: no vote. Author 3
        // references its own previous block first, so it does vote.
        for vote in &r2[..3] {
            assert!(!store.is_vote(vote, &skipped_leader));
        }
        assert!(store.is_vote(&r2[3], &skipped_leader));
        let seen_leader = store.get(&r1[0]).unwrap().clone();
        for vote in &r2 {
            assert!(store.is_vote(vote, &seen_leader));
        }
    }

    #[test]
    fn equivocating_slot_votes_split_but_never_double() {
        let mut dag = builder();
        let r1 = dag.add_full_round();
        // Round 2: author 1 equivocates with two blocks.
        let specs = vec![
            BlockSpec::new(0),
            BlockSpec::new(1).with_tag(1),
            BlockSpec::new(1).with_tag(2),
            BlockSpec::new(2),
            BlockSpec::new(3),
        ];
        let r2 = dag.add_round(specs);
        let (eq_a, eq_b) = (r2[1], r2[2]);
        assert_eq!(eq_a.author, AuthorityIndex(1));
        assert_eq!(eq_b.author, AuthorityIndex(1));
        assert_ne!(eq_a.digest, eq_b.digest);

        // Round 3: v0 and v1 reference equivocation A; v2 and v3 reference B.
        let specs = vec![
            BlockSpec::new(0).with_explicit_parents(vec![r2[0], eq_a, r2[3], r2[4]]),
            BlockSpec::new(1).with_explicit_parents(vec![eq_a, r2[0], r2[3], r2[4]]),
            BlockSpec::new(2).with_explicit_parents(vec![r2[3], eq_b, r2[0], r2[4]]),
            BlockSpec::new(3).with_explicit_parents(vec![r2[4], eq_b, r2[0], r2[3]]),
        ];
        let r3 = dag.add_round(specs);
        let store = dag.store();
        let block_a = store.get(&eq_a).unwrap().clone();
        let block_b = store.get(&eq_b).unwrap().clone();
        let mut votes_a = 0;
        let mut votes_b = 0;
        for vote in &r3 {
            let for_a = store.is_vote(vote, &block_a);
            let for_b = store.is_vote(vote, &block_b);
            // Observation 1: never both.
            assert!(!(for_a && for_b), "{vote} votes for both equivocations");
            votes_a += usize::from(for_a);
            votes_b += usize::from(for_b);
        }
        assert_eq!(votes_a, 2);
        assert_eq!(votes_b, 2);
        // v1's own chain: r1 block of author 1 still gets votes through
        // either equivocation (both reference it) — sanity check is_link.
        assert!(store.is_link(&r1[1], &eq_a));
        assert!(store.is_link(&r1[1], &eq_b));
    }

    #[test]
    fn certificates_require_quorum_of_votes() {
        let mut dag = builder();
        let r1 = dag.add_full_round();
        let _r2 = dag.add_full_round();
        let _r3 = dag.add_full_round();
        let r4 = dag.add_full_round();
        let store = dag.store();
        let leader = store.get(&r1[0]).unwrap().clone();
        // Full DAG: every round-4 block is a certificate for every round-1
        // block (its 4 parents all vote).
        for cert_ref in &r4 {
            let cert = store.get(cert_ref).unwrap().clone();
            assert!(store.is_cert(&cert, &leader));
        }
    }

    #[test]
    fn certificate_fails_below_quorum() {
        let mut dag = builder();
        let r1 = dag.add_full_round();
        // Round 2: only authors 0 and 1 see r1's author-3 block.
        let specs = vec![
            BlockSpec::new(0),
            BlockSpec::new(1),
            BlockSpec::new(2).with_parent_authors(vec![0, 1, 2]),
            BlockSpec::new(3).with_parent_authors(vec![0, 1, 3]),
        ];
        let _r2 = dag.add_round(specs);
        let r3 = dag.add_full_round();
        let store = dag.store();
        let leader = store.get(&r1[3]).unwrap().clone();
        // Hmm: r2 blocks of authors 2 and 3 do not vote for r1[3]... but
        // author 3's own r2 block references its own r1 block (own-first),
        // so it does vote. Votes: authors 0, 1, 3 = quorum.
        let cert = store.get(&r3[0]).unwrap().clone();
        assert!(store.is_cert(&cert, &leader));

        // Author 2's r1 block: round 2 voters are 0, 1, 2 (author 3 skips
        // it) — still a quorum. Demonstrate a genuine sub-quorum case:
        // leader v3@r1 seen only by v3 itself at round 2.
        let specs = vec![
            BlockSpec::new(0).with_parent_authors(vec![0, 1, 2]),
            BlockSpec::new(1).with_parent_authors(vec![0, 1, 2]),
            BlockSpec::new(2).with_parent_authors(vec![0, 1, 2]),
            BlockSpec::new(3).with_parent_authors(vec![0, 1, 3]),
        ];
        let r4 = dag.add_round(specs);
        let r5 = dag.add_full_round();
        let store = dag.store();
        let leader = store.get(&r3[3]).unwrap().clone();
        // Only author 3's round-4 block votes for v3@r3; certificates at
        // round 5 cannot gather 3 votes.
        let votes: usize = r4
            .iter()
            .map(|vote| usize::from(store.is_vote(vote, &leader)))
            .sum();
        assert_eq!(votes, 1);
        for cert_ref in &r5 {
            let cert = store.get(cert_ref).unwrap().clone();
            assert!(!store.is_cert(&cert, &leader));
        }
    }

    #[test]
    fn is_link_reachability() {
        let mut dag = builder();
        let r1 = dag.add_full_round();
        let specs = vec![
            BlockSpec::new(0).with_parent_authors(vec![0, 1, 2]),
            BlockSpec::new(1).with_parent_authors(vec![0, 1, 2]),
            BlockSpec::new(2).with_parent_authors(vec![0, 1, 2]),
            BlockSpec::new(3),
        ];
        let r2 = dag.add_round(specs);
        let store = dag.store();
        assert!(store.is_link(&r1[0], &r2[0]));
        assert!(store.is_link(&r1[3], &r2[3]));
        // Authors 0..2 never referenced r1[3].
        assert!(!store.is_link(&r1[3], &r2[0]));
        // Self-link and genesis reachability.
        assert!(store.is_link(&r1[0], &r1[0]));
        let genesis = Block::all_genesis(4);
        assert!(store.is_link(&genesis[2].reference(), &r2[1]));
        // Reverse direction never links.
        assert!(!store.is_link(&r2[0], &r1[0]));
    }

    #[test]
    fn linearize_emits_each_block_once_leader_last() {
        let mut dag = builder();
        let r1 = dag.add_full_round();
        let r2 = dag.add_full_round();
        let store = dag.store();
        let mut emitted = HashSet::new();

        let first = store.linearize_sub_dag(&r1[0], &mut emitted);
        // Genesis (4 blocks) + the leader itself.
        assert_eq!(first.len(), 5);
        assert_eq!(first.last().unwrap().reference(), r1[0]);

        let second = store.linearize_sub_dag(&r2[0], &mut emitted);
        // Remaining r1 blocks (3) + r2 leader.
        assert_eq!(second.len(), 4);
        assert_eq!(second.last().unwrap().reference(), r2[0]);

        // No duplicates across calls.
        let mut seen = HashSet::new();
        for block in first.iter().chain(second.iter()) {
            assert!(seen.insert(block.reference()));
        }

        // Re-linearizing the same leader emits nothing.
        assert!(store.linearize_sub_dag(&r2[0], &mut emitted).is_empty());
    }

    #[test]
    fn linearize_order_is_deterministic_round_then_author() {
        let mut dag = builder();
        let _r1 = dag.add_full_round();
        let r2 = dag.add_full_round();
        let store = dag.store();
        let mut emitted = HashSet::new();
        let sequence = store.linearize_sub_dag(&r2[1], &mut emitted);
        let keys: Vec<(u64, u32)> = sequence
            .iter()
            .map(|block| (block.round(), block.author().0))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn causal_history_counts() {
        let mut dag = builder();
        let r1 = dag.add_full_round();
        let store = dag.store();
        let history = store.causal_history(&r1[0]);
        // 4 genesis + itself.
        assert_eq!(history.len(), 5);
        assert!(history.contains(&r1[0]));
    }

    #[test]
    fn voted_block_unknown_ref_is_none() {
        let dag = builder();
        let store = dag.store();
        let genesis = Block::all_genesis(4);
        let bogus = BlockRef {
            round: 9,
            author: AuthorityIndex(0),
            digest: mahimahi_crypto::Digest::ZERO,
        };
        assert_eq!(store.voted_block(&bogus, genesis[0].slot()), None);
        assert!(!store.is_link(&bogus, &genesis[0].reference()));
        assert!(store.causal_history(&bogus).is_empty());
    }
}
