//! The equivocation-aware block store.

use mahimahi_types::{
    AuthorityIndex, AuthoritySet, Block, BlockRef, DigestKeyed, EquivocationProof, Round, Slot,
};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::error::Error as StdError;
use std::fmt;
use std::sync::Arc;

/// Dense index of a block inside a [`BlockStore`] (internal interning).
pub(crate) type BlockIdx = u32;

/// Errors from store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StoreError {
    /// The block's author index is outside the committee.
    UnknownAuthority(AuthorityIndex),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownAuthority(authority) => {
                write!(f, "block author {authority} outside the committee")
            }
        }
    }
}

impl StdError for StoreError {}

/// Outcome of [`BlockStore::insert`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InsertResult {
    /// The block (and possibly previously-pending descendants) joined the
    /// DAG. Contains every reference that became available, in insertion
    /// order (the block itself first).
    Inserted(Vec<BlockRef>),
    /// The block is buffered until the listed ancestors arrive.
    Pending(Vec<BlockRef>),
    /// The block (or an identical copy) is already stored or pending.
    Duplicate,
    /// The block's round is below the garbage-collection cutoff; it was
    /// dropped (its slot's fate was decided long ago).
    BelowGcFloor,
}

pub(crate) struct StoredBlock {
    pub block: Arc<Block>,
    /// Parent references resolved to dense indexes.
    pub parents: Vec<BlockIdx>,
}

/// Per-round block index, dense in the committee.
///
/// `present` mirrors which slots are non-empty so quorum tallies
/// ([`BlockStore::authorities_at_round`]) are an O(1) bitset copy instead of
/// an O(n) scan allocating a vector per call — the tally runs once per
/// engine input on the hot path.
struct RoundSlots {
    /// author → equivocating block indexes (insertion order).
    slots: Vec<Vec<BlockIdx>>,
    /// Authorities with at least one block this round.
    present: AuthoritySet,
}

impl RoundSlots {
    fn new(committee_size: usize) -> Self {
        RoundSlots {
            slots: vec![Vec::new(); committee_size],
            present: AuthoritySet::new(),
        }
    }
}

/// A validator's local DAG: every causally-complete block it has accepted.
///
/// The store is *equivocation-aware*: `DAG[r, v]` may hold several blocks
/// when `v` is Byzantine, and all of them participate in traversals exactly
/// as the paper prescribes.
///
/// Blocks whose ancestry is incomplete are buffered (`Pending`) and join the
/// DAG automatically once their missing parents arrive — the store performs
/// the paper's causal-completeness admission rule; a synchronizer drives
/// [`BlockStore::missing_parents`] to fetch the gaps.
pub struct BlockStore {
    committee_size: usize,
    quorum_threshold: usize,
    pub(crate) blocks: Vec<StoredBlock>,
    pub(crate) by_ref: HashMap<BlockRef, BlockIdx, DigestKeyed>,
    /// round → dense per-author slot index with its presence bitset.
    rounds: BTreeMap<Round, RoundSlots>,
    /// Authorities with more than one block in some live round, maintained
    /// incrementally at admission and rebuilt on [`BlockStore::compact`].
    equivocators: AuthoritySet,
    highest_round: Round,
    /// Rounds below this have been garbage-collected ([`BlockStore::compact`]).
    gc_cutoff: Round,
    /// Blocks waiting for ancestors: own ref → block.
    pending: HashMap<BlockRef, Arc<Block>, DigestKeyed>,
    /// missing parent → dependents waiting on it.
    waiters: HashMap<BlockRef, Vec<BlockRef>, DigestKeyed>,
    /// Memoized `VotedBlock` results: (vote block, target slot) → voted
    /// block (if any). Sound because a stored block's causal history is
    /// immutable. Interior mutability keeps traversals `&self`.
    pub(crate) vote_cache: Mutex<HashMap<(BlockIdx, Slot), Option<BlockIdx>, DigestKeyed>>,
    /// Memoized `IsCert` results: (certificate block, leader block) → bool.
    /// Sound for the same reason: both blocks' histories are immutable.
    pub(crate) cert_cache: Mutex<HashMap<(BlockIdx, BlockIdx), bool, DigestKeyed>>,
    /// Equivocation proofs emitted at admission and not yet collected
    /// ([`BlockStore::take_equivocation_evidence`]). One proof per slot —
    /// emitted the moment the *second* digest lands; further forks in the
    /// same slot add no new proofs (one conviction per author suffices).
    fresh_evidence: Vec<EquivocationProof>,
}

impl BlockStore {
    /// Creates a store for a committee of `committee_size` validators with
    /// quorum threshold `quorum_threshold`, pre-seeded with the genesis
    /// blocks of round 0.
    pub fn new(committee_size: usize, quorum_threshold: usize) -> Self {
        let mut store = BlockStore {
            committee_size,
            quorum_threshold,
            blocks: Vec::new(),
            by_ref: HashMap::default(),
            rounds: BTreeMap::new(),
            equivocators: AuthoritySet::new(),
            highest_round: 0,
            gc_cutoff: 0,
            pending: HashMap::default(),
            waiters: HashMap::default(),
            vote_cache: Mutex::new(HashMap::default()),
            cert_cache: Mutex::new(HashMap::default()),
            fresh_evidence: Vec::new(),
        };
        for genesis in Block::all_genesis(committee_size) {
            store
                .insert(genesis.into_arc())
                .expect("genesis authors are in range");
        }
        store
    }

    /// The committee size this store was created for.
    pub fn committee_size(&self) -> usize {
        self.committee_size
    }

    /// The quorum threshold `2f + 1` used by vote/certificate counting.
    pub fn quorum_threshold(&self) -> usize {
        self.quorum_threshold
    }

    /// Inserts a block, buffering it if ancestors are missing.
    ///
    /// The caller is responsible for block *validity* ([`Block::verify`]);
    /// the store enforces only causal completeness and authority range.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::UnknownAuthority`] for out-of-range authors
    /// (such blocks could not be indexed).
    pub fn insert(&mut self, block: Arc<Block>) -> Result<InsertResult, StoreError> {
        if block.author().as_usize() >= self.committee_size {
            return Err(StoreError::UnknownAuthority(block.author()));
        }
        if block.round() < self.gc_cutoff {
            return Ok(InsertResult::BelowGcFloor);
        }
        let reference = block.reference();
        if self.by_ref.contains_key(&reference) || self.pending.contains_key(&reference) {
            return Ok(InsertResult::Duplicate);
        }
        // Single pass over the parents: resolve each one exactly once, so
        // the complete-block fast path pays one hash lookup per edge (the
        // resolved indexes feed `admit_resolved` directly). Parents below
        // the GC cutoff are treated as present: their slots were decided
        // and dropped; floored linearization never reads them.
        let mut resolved = Vec::with_capacity(block.parents().len());
        let mut missing = Vec::new();
        for parent in block.parents() {
            match self.by_ref.get(parent) {
                Some(&index) => resolved.push(index),
                None if parent.round >= self.gc_cutoff => missing.push(*parent),
                None => {}
            }
        }
        if !missing.is_empty() {
            for parent in &missing {
                self.waiters.entry(*parent).or_default().push(reference);
            }
            self.pending.insert(reference, block);
            return Ok(InsertResult::Pending(missing));
        }
        let mut admitted = vec![reference];
        self.admit_resolved(block, resolved);
        self.drain_waiters(reference, &mut admitted);
        Ok(InsertResult::Inserted(admitted))
    }

    /// Links a now-complete block into the DAG given its already-resolved
    /// parent indexes (garbage-collected parents are pruned edges). Callers
    /// resolve parents while proving completeness, so no edge is looked up
    /// twice.
    fn admit_resolved(&mut self, block: Arc<Block>, parents: Vec<BlockIdx>) {
        let reference = block.reference();
        let index = self.blocks.len() as BlockIdx;
        self.blocks.push(StoredBlock { block, parents });
        self.by_ref.insert(reference, index);
        let round_slots = self
            .rounds
            .entry(reference.round)
            .or_insert_with(|| RoundSlots::new(self.committee_size));
        round_slots.present.insert(reference.author);
        let slot = &mut round_slots.slots[reference.author.as_usize()];
        slot.push(index);
        // Fault attribution at the source: the second digest landing in a
        // slot is conclusive evidence of equivocation. Emit one proof per
        // slot (at the 1 → 2 transition); `by_ref` dedup guarantees the two
        // blocks genuinely differ in digest.
        if slot.len() == 2 {
            let first = Arc::clone(&self.blocks[slot[0] as usize].block);
            let second = Arc::clone(&self.blocks[slot[1] as usize].block);
            match EquivocationProof::new(first, second) {
                Ok(proof) => self.fresh_evidence.push(proof),
                Err(error) => {
                    debug_assert!(false, "slot-mates must form a proof: {error}");
                }
            }
        }
        if slot.len() > 1 {
            self.equivocators.insert(reference.author);
        }
        self.highest_round = self.highest_round.max(reference.round);
    }

    /// After `arrived` joined the DAG, admits any pending blocks that are now
    /// causally complete (transitively).
    fn drain_waiters(&mut self, arrived: BlockRef, admitted: &mut Vec<BlockRef>) {
        let mut frontier = vec![arrived];
        while let Some(parent) = frontier.pop() {
            let Some(dependents) = self.waiters.remove(&parent) else {
                continue;
            };
            for dependent in dependents {
                let Some(block) = self.pending.get(&dependent) else {
                    continue; // already admitted via another parent
                };
                // Resolve while proving completeness: one lookup per edge.
                let mut resolved = Vec::with_capacity(block.parents().len());
                let mut complete = true;
                for reference in block.parents() {
                    match self.by_ref.get(reference) {
                        Some(&index) => resolved.push(index),
                        None if reference.round < self.gc_cutoff => {}
                        None => {
                            complete = false;
                            break;
                        }
                    }
                }
                if complete {
                    let block = self.pending.remove(&dependent).expect("present");
                    self.admit_resolved(block, resolved);
                    admitted.push(dependent);
                    frontier.push(dependent);
                }
            }
        }
    }

    /// Whether the block is linked into the DAG (not merely pending).
    pub fn contains(&self, reference: &BlockRef) -> bool {
        self.by_ref.contains_key(reference)
    }

    /// Fetches a stored block.
    pub fn get(&self, reference: &BlockRef) -> Option<&Arc<Block>> {
        self.by_ref
            .get(reference)
            .map(|&index| &self.blocks[index as usize].block)
    }

    /// All blocks of `round`, across every authority and equivocation
    /// (`DAG[r, *]`).
    pub fn blocks_at_round(&self, round: Round) -> Vec<&Arc<Block>> {
        let Some(round_slots) = self.rounds.get(&round) else {
            return Vec::new();
        };
        round_slots
            .slots
            .iter()
            .flatten()
            .map(|&index| &self.blocks[index as usize].block)
            .collect()
    }

    /// All blocks occupying `slot` (`DAG[r, v]`; more than one only under
    /// equivocation).
    pub fn blocks_in_slot(&self, slot: Slot) -> Vec<&Arc<Block>> {
        let Some(round_slots) = self.rounds.get(&slot.round) else {
            return Vec::new();
        };
        round_slots.slots[slot.authority.as_usize()]
            .iter()
            .map(|&index| &self.blocks[index as usize].block)
            .collect()
    }

    /// Distinct authorities with at least one block at `round`.
    ///
    /// An O(1) copy of the round's maintained presence bitset — the quorum
    /// tally the engine runs once per input allocates nothing.
    pub fn authorities_at_round(&self, round: Round) -> AuthoritySet {
        self.rounds
            .get(&round)
            .map(|round_slots| round_slots.present)
            .unwrap_or_default()
    }

    /// The highest round with any stored block.
    pub fn highest_round(&self) -> Round {
        self.highest_round
    }

    /// The garbage-collection cutoff (0 when never compacted).
    pub fn gc_cutoff(&self) -> Round {
        self.gc_cutoff
    }

    /// Total number of stored (causally complete) blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the store holds no blocks (never true: genesis is pre-seeded).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Number of blocks buffered awaiting ancestors.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// References the store is waiting for (synchronizer work queue).
    pub fn missing_parents(&self) -> Vec<BlockRef> {
        let mut missing: Vec<BlockRef> = self
            .waiters
            .keys()
            .filter(|reference| !self.by_ref.contains_key(reference))
            .copied()
            .collect();
        missing.sort();
        missing
    }

    /// Iterates over every stored block in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<Block>> {
        self.blocks.iter().map(|stored| &stored.block)
    }

    /// Drains the equivocation proofs emitted since the last call.
    ///
    /// [`BlockStore::insert`] emits a proof the moment a second digest lands
    /// in a slot; callers (the evidence pool, the simulator's gossip)
    /// collect them here. Proofs reference pre-validated stored blocks, so
    /// they verify by construction against the store's committee.
    pub fn take_equivocation_evidence(&mut self) -> Vec<EquivocationProof> {
        std::mem::take(&mut self.fresh_evidence)
    }

    /// Number of emitted-but-uncollected equivocation proofs.
    pub fn pending_evidence_count(&self) -> usize {
        self.fresh_evidence.len()
    }

    /// Authorities with more than one stored block in some round — the
    /// equivocators visible in this store's current (possibly compacted)
    /// view. Maintained incrementally at admission (and rebuilt by
    /// [`BlockStore::compact`]), so this is an O(1) bitset copy.
    pub fn equivocators(&self) -> AuthoritySet {
        self.equivocators
    }

    pub(crate) fn index_of(&self, reference: &BlockRef) -> Option<BlockIdx> {
        self.by_ref.get(reference).copied()
    }

    pub(crate) fn stored(&self, index: BlockIdx) -> &StoredBlock {
        &self.blocks[index as usize]
    }

    /// Garbage collection: drops every block with `round < cutoff` and all
    /// state referring to them (indexes, pending blocks that can no longer
    /// complete, memo caches).
    ///
    /// Safe to call once the commit sequence has passed `cutoff` *and*
    /// linearization uses a GC floor ≥ `cutoff`
    /// ([`BlockStore::linearize_sub_dag_floored`]): decisions about slots at
    /// or above `cutoff` only read rounds ≥ `cutoff`, and floored
    /// linearization deterministically ignores older blocks, so pruned
    /// parent edges are never followed.
    ///
    /// Returns the number of blocks dropped.
    pub fn compact(&mut self, cutoff: Round) -> usize {
        if cutoff <= self.gc_cutoff {
            return 0;
        }
        self.gc_cutoff = cutoff;
        let before = self.blocks.len();
        // Rebuild the interned block table keeping rounds ≥ cutoff (and
        // genesis-bootstrap blocks only if cutoff is 0, handled above).
        let old_blocks = std::mem::take(&mut self.blocks);
        let mut remap: HashMap<BlockIdx, BlockIdx> = HashMap::new();
        let mut kept: Vec<StoredBlock> = Vec::new();
        for (old_index, stored) in old_blocks.into_iter().enumerate() {
            if stored.block.round() >= cutoff {
                remap.insert(old_index as BlockIdx, kept.len() as BlockIdx);
                kept.push(stored);
            }
        }
        for stored in &mut kept {
            stored.parents = stored
                .parents
                .iter()
                .filter_map(|parent| remap.get(parent).copied())
                .collect();
        }
        self.blocks = kept;
        self.by_ref.retain(|reference, index| {
            if reference.round >= cutoff {
                *index = remap[index];
                true
            } else {
                false
            }
        });
        self.rounds.retain(|&round, _| round >= cutoff);
        self.equivocators.clear();
        for round_slots in self.rounds.values_mut() {
            for (author, indexes) in round_slots.slots.iter_mut().enumerate() {
                for index in indexes.iter_mut() {
                    *index = remap[index];
                }
                if indexes.len() > 1 {
                    self.equivocators.insert(AuthorityIndex::from(author));
                }
            }
        }
        // Pending blocks waiting on now-unreachable ancestry can never be
        // admitted; drop them and their waiter entries.
        self.pending
            .retain(|reference, _| reference.round >= cutoff);
        let pending_refs: std::collections::HashSet<BlockRef> =
            self.pending.keys().copied().collect();
        self.waiters.retain(|missing, dependents| {
            if missing.round < cutoff {
                return false;
            }
            dependents.retain(|dependent| pending_refs.contains(dependent));
            !dependents.is_empty()
        });
        // Memo caches are keyed by dense indexes: cleared wholesale (they
        // re-warm within a round).
        self.vote_cache.lock().clear();
        self.cert_cache.lock().clear();
        before - self.blocks.len()
    }

    /// Distinct authorities of round `round` satisfying `predicate` on at
    /// least one of their blocks (equivocation-tolerant counting used by the
    /// decision rules). Returned as an allocation-free bitset; cardinality
    /// checks against the quorum thresholds are popcounts.
    pub fn authorities_with<F>(&self, round: Round, predicate: F) -> AuthoritySet
    where
        F: Fn(&Arc<Block>) -> bool,
    {
        let mut authorities = AuthoritySet::new();
        let Some(round_slots) = self.rounds.get(&round) else {
            return authorities;
        };
        for (author, indexes) in round_slots.slots.iter().enumerate() {
            for &index in indexes {
                if predicate(&self.blocks[index as usize].block) {
                    authorities.insert(AuthorityIndex::from(author));
                    break;
                }
            }
        }
        authorities
    }
}

impl fmt::Debug for BlockStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BlockStore({} blocks, {} pending, rounds 0..={})",
            self.blocks.len(),
            self.pending.len(),
            self.highest_round
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mahimahi_types::{BlockBuilder, TestCommittee, Transaction};
    use std::collections::HashSet;

    fn setup() -> TestCommittee {
        TestCommittee::new(4, 11)
    }

    fn round_one_block(setup: &TestCommittee, author: u32) -> Arc<Block> {
        let genesis = Block::all_genesis(4);
        let mut parents = vec![genesis[author as usize].reference()];
        parents.extend(
            genesis
                .iter()
                .map(|b| b.reference())
                .filter(|r| r.author.0 != author),
        );
        BlockBuilder::new(AuthorityIndex(author), 1)
            .parents(parents)
            .build(setup)
            .into_arc()
    }

    #[test]
    fn new_store_contains_genesis() {
        let store = BlockStore::new(4, 3);
        assert_eq!(store.len(), 4);
        assert_eq!(store.blocks_at_round(0).len(), 4);
        assert_eq!(store.highest_round(), 0);
        assert!(!store.is_empty());
    }

    #[test]
    fn insert_complete_block() {
        let setup = setup();
        let mut store = BlockStore::new(4, 3);
        let block = round_one_block(&setup, 0);
        let result = store.insert(block.clone()).unwrap();
        assert_eq!(result, InsertResult::Inserted(vec![block.reference()]));
        assert!(store.contains(&block.reference()));
        assert_eq!(store.highest_round(), 1);
    }

    #[test]
    fn duplicate_insert_detected() {
        let setup = setup();
        let mut store = BlockStore::new(4, 3);
        let block = round_one_block(&setup, 0);
        store.insert(block.clone()).unwrap();
        assert_eq!(store.insert(block).unwrap(), InsertResult::Duplicate);
    }

    #[test]
    fn author_out_of_range_rejected() {
        let mut store = BlockStore::new(4, 3);
        let bogus = Block::genesis(AuthorityIndex(9)).into_arc();
        assert_eq!(
            store.insert(bogus),
            Err(StoreError::UnknownAuthority(AuthorityIndex(9)))
        );
    }

    #[test]
    fn pending_until_parents_arrive() {
        let setup = setup();
        let mut store = BlockStore::new(4, 3);
        let r1: Vec<Arc<Block>> = (0..4).map(|a| round_one_block(&setup, a)).collect();
        let r1_refs: Vec<BlockRef> = r1.iter().map(|b| b.reference()).collect();
        let mut parents = vec![r1_refs[0]];
        parents.extend(r1_refs[1..].iter().copied());
        let r2 = BlockBuilder::new(AuthorityIndex(0), 2)
            .parents(parents)
            .transaction(Transaction::benchmark(1))
            .build(&setup)
            .into_arc();

        // Insert the round-2 block first: all four round-1 parents missing.
        let result = store.insert(r2.clone()).unwrap();
        let InsertResult::Pending(missing) = result else {
            panic!("expected pending, got {result:?}");
        };
        assert_eq!(missing.len(), 4);
        assert_eq!(store.pending_count(), 1);
        assert_eq!(store.missing_parents().len(), 4);
        assert!(!store.contains(&r2.reference()));

        // Feed three parents: still pending.
        for block in &r1[..3] {
            store.insert(block.clone()).unwrap();
        }
        assert!(!store.contains(&r2.reference()));

        // The final parent releases the dependent block.
        let result = store.insert(r1[3].clone()).unwrap();
        let InsertResult::Inserted(admitted) = result else {
            panic!("expected inserted, got {result:?}");
        };
        assert_eq!(admitted, vec![r1_refs[3], r2.reference()]);
        assert!(store.contains(&r2.reference()));
        assert_eq!(store.pending_count(), 0);
        assert!(store.missing_parents().is_empty());
    }

    #[test]
    fn duplicate_pending_detected() {
        let setup = setup();
        let mut store = BlockStore::new(4, 3);
        let r1 = round_one_block(&setup, 0);
        let refs = vec![r1.reference()];
        let dependent = BlockBuilder::new(AuthorityIndex(0), 2)
            .parents(refs)
            .build(&setup)
            .into_arc();
        assert!(matches!(
            store.insert(dependent.clone()).unwrap(),
            InsertResult::Pending(_)
        ));
        assert_eq!(store.insert(dependent).unwrap(), InsertResult::Duplicate);
    }

    #[test]
    fn equivocations_share_a_slot() {
        let setup = setup();
        let mut store = BlockStore::new(4, 3);
        let genesis = Block::all_genesis(4);
        let mut parents = vec![genesis[1].reference()];
        parents.extend(
            genesis
                .iter()
                .map(|b| b.reference())
                .filter(|r| r.author.0 != 1),
        );
        let one = BlockBuilder::new(AuthorityIndex(1), 1)
            .parents(parents.clone())
            .transaction(Transaction::benchmark(1))
            .build(&setup)
            .into_arc();
        let two = BlockBuilder::new(AuthorityIndex(1), 1)
            .parents(parents)
            .transaction(Transaction::benchmark(2))
            .build(&setup)
            .into_arc();
        store.insert(one.clone()).unwrap();
        store.insert(two.clone()).unwrap();
        let slot = Slot::new(1, AuthorityIndex(1));
        let in_slot = store.blocks_in_slot(slot);
        assert_eq!(in_slot.len(), 2);
        assert_eq!(store.blocks_at_round(1).len(), 2);
        assert_eq!(
            store.authorities_at_round(1).iter().collect::<Vec<_>>(),
            vec![AuthorityIndex(1)]
        );

        // Detection at the source: the second digest emitted a proof naming
        // exactly the equivocator.
        assert_eq!(store.pending_evidence_count(), 1);
        assert_eq!(
            store.equivocators(),
            AuthoritySet::from_iter([AuthorityIndex(1)]),
            "live view agrees with the emitted evidence"
        );
        let evidence = store.take_equivocation_evidence();
        assert_eq!(evidence.len(), 1);
        let proof = &evidence[0];
        assert_eq!(proof.author(), AuthorityIndex(1));
        assert_eq!(proof.round(), 1);
        assert_eq!(proof.verify(setup.committee()), Ok(()));
        let cited: HashSet<BlockRef> = [proof.first().reference(), proof.second().reference()]
            .into_iter()
            .collect();
        assert_eq!(
            cited,
            HashSet::from([one.reference(), two.reference()]),
            "the proof cites the two conflicting blocks"
        );
        // Draining is one-shot.
        assert!(store.take_equivocation_evidence().is_empty());
    }

    #[test]
    fn third_fork_adds_no_second_proof() {
        let setup = setup();
        let mut store = BlockStore::new(4, 3);
        let genesis = Block::all_genesis(4);
        let mut parents = vec![genesis[2].reference()];
        parents.extend(
            genesis
                .iter()
                .map(|b| b.reference())
                .filter(|r| r.author.0 != 2),
        );
        for tag in 1..=3u64 {
            let fork = BlockBuilder::new(AuthorityIndex(2), 1)
                .parents(parents.clone())
                .transaction(Transaction::benchmark(tag))
                .build(&setup)
                .into_arc();
            store.insert(fork).unwrap();
        }
        assert_eq!(
            store.blocks_in_slot(Slot::new(1, AuthorityIndex(2))).len(),
            3
        );
        // One proof per slot: the 1 → 2 transition, not every pair.
        assert_eq!(store.take_equivocation_evidence().len(), 1);
    }

    #[test]
    fn honest_inserts_emit_no_evidence() {
        let setup = setup();
        let mut store = BlockStore::new(4, 3);
        for author in 0..4 {
            store.insert(round_one_block(&setup, author)).unwrap();
        }
        assert_eq!(store.pending_evidence_count(), 0);
        assert!(store.equivocators().is_empty());
        assert!(store.take_equivocation_evidence().is_empty());
    }

    #[test]
    fn evidence_survives_duplicate_and_pending_paths() {
        let setup = setup();
        let mut store = BlockStore::new(4, 3);
        let r1: Vec<Arc<Block>> = (0..4).map(|a| round_one_block(&setup, a)).collect();
        // A round-2 equivocation pair arrives *before* its parents: both
        // variants buffer as pending, then admit together once round 1
        // lands — the proof must still be emitted on admission.
        let r1_refs: Vec<BlockRef> = r1.iter().map(|b| b.reference()).collect();
        let mut parents = vec![r1_refs[0]];
        parents.extend(r1_refs[1..].iter().copied());
        let variant = |tag: u64| {
            BlockBuilder::new(AuthorityIndex(0), 2)
                .parents(parents.clone())
                .transaction(Transaction::benchmark(tag))
                .build(&setup)
                .into_arc()
        };
        let (a, b) = (variant(1), variant(2));
        assert!(matches!(
            store.insert(a.clone()).unwrap(),
            InsertResult::Pending(_)
        ));
        assert!(matches!(store.insert(b).unwrap(), InsertResult::Pending(_)));
        assert_eq!(store.pending_evidence_count(), 0, "nothing admitted yet");
        for block in &r1 {
            store.insert(block.clone()).unwrap();
        }
        assert_eq!(store.take_equivocation_evidence().len(), 1);
        // Re-inserting an already-stored variant is a duplicate, no proof.
        assert_eq!(store.insert(a).unwrap(), InsertResult::Duplicate);
        assert_eq!(store.pending_evidence_count(), 0);
    }

    #[test]
    fn authorities_with_predicate() {
        let setup = setup();
        let mut store = BlockStore::new(4, 3);
        for author in 0..3 {
            store.insert(round_one_block(&setup, author)).unwrap();
        }
        let with_round_one = store.authorities_with(1, |_| true);
        assert_eq!(with_round_one.len(), 3);
        let none = store.authorities_with(1, |_| false);
        assert!(none.is_empty());
    }

    #[test]
    fn compact_drops_old_rounds_and_rejects_stale_blocks() {
        let setup = setup();
        let mut store = BlockStore::new(4, 3);
        let r1: Vec<Arc<Block>> = (0..4).map(|a| round_one_block(&setup, a)).collect();
        for block in &r1 {
            store.insert(block.clone()).unwrap();
        }
        // Round 2 blocks on top.
        let r1_refs: Vec<BlockRef> = r1.iter().map(|b| b.reference()).collect();
        let mut r2 = Vec::new();
        for author in 0..4u32 {
            let mut parents = vec![r1_refs[author as usize]];
            parents.extend(r1_refs.iter().copied().filter(|r| r.author.0 != author));
            let block = BlockBuilder::new(AuthorityIndex(author), 2)
                .parents(parents)
                .build(&setup)
                .into_arc();
            store.insert(block.clone()).unwrap();
            r2.push(block);
        }
        assert_eq!(store.len(), 12);

        let dropped = store.compact(2);
        assert_eq!(dropped, 8); // genesis + round 1
        assert_eq!(store.gc_cutoff(), 2);
        assert!(store.blocks_at_round(0).is_empty());
        assert!(store.blocks_at_round(1).is_empty());
        assert_eq!(store.blocks_at_round(2).len(), 4);
        // Round-2 blocks remain addressable and traversable among
        // themselves.
        assert!(store.contains(&r2[0].reference()));
        assert!(store.is_link(&r2[0].reference(), &r2[0].reference()));

        // Re-inserting a pruned round-1 block is absorbed.
        assert_eq!(
            store.insert(r1[0].clone()).unwrap(),
            InsertResult::BelowGcFloor
        );
        // A new round-3 block referencing round-2 (present) plus pruned
        // round-1 parents is admitted with the stale edges dropped.
        let mut parents = vec![r2[0].reference()];
        parents.extend(r2[1..].iter().map(|b| b.reference()));
        parents.push(r1_refs[1]);
        let block = BlockBuilder::new(AuthorityIndex(0), 3)
            .parents(parents)
            .build(&setup)
            .into_arc();
        assert!(matches!(
            store.insert(block).unwrap(),
            InsertResult::Inserted(_)
        ));
        // Compacting to a lower (or equal) cutoff is a no-op.
        assert_eq!(store.compact(1), 0);
        assert_eq!(store.compact(2), 0);
    }

    #[test]
    fn missing_parents_is_sorted_and_deduplicated() {
        let setup = setup();
        let mut store = BlockStore::new(4, 3);
        let r1: Vec<Arc<Block>> = (0..4).map(|a| round_one_block(&setup, a)).collect();
        let r1_refs: Vec<BlockRef> = r1.iter().map(|b| b.reference()).collect();
        // Two round-2 blocks both waiting on the same four round-1 parents.
        for author in 0..2u32 {
            let mut parents = vec![r1_refs[author as usize]];
            parents.extend(r1_refs.iter().copied().filter(|r| r.author.0 != author));
            let block = BlockBuilder::new(AuthorityIndex(author), 2)
                .parents(parents)
                .build(&setup)
                .into_arc();
            store.insert(block).unwrap();
        }
        let missing = store.missing_parents();
        assert_eq!(missing.len(), 4);
        let mut sorted = missing.clone();
        sorted.sort();
        assert_eq!(missing, sorted);
    }
}
