//! The uncertified DAG substrate.
//!
//! Validators hold blocks in a local DAG (`DAG[r, v]` in the paper's
//! notation). This crate provides:
//!
//! - [`BlockStore`]: an equivocation-aware, causally-complete block store
//!   with pending-ancestry buffering (the paper's rule that *"honest
//!   validators only include hashes of blocks once they have downloaded
//!   their entire causal history"*), synchronizer hooks
//!   ([`BlockStore::missing_parents`]), and fault attribution at the
//!   source: the moment a second digest lands in a slot the store emits an
//!   `EquivocationProof` ([`BlockStore::take_equivocation_evidence`]);
//! - the traversal helpers of Algorithm 3 — [`BlockStore::voted_block`]
//!   (`VotedBlock`), [`BlockStore::is_vote`] (`IsVote`),
//!   [`BlockStore::is_cert`] (`IsCert`), [`BlockStore::is_link`] (`IsLink`),
//!   and [`BlockStore::linearize_sub_dag`] (`LinearizeSubDags`);
//! - [`DagBuilder`]: a test/simulation utility for constructing DAGs with
//!   precise control over references, omissions, and equivocations.
//!
//! # Example
//!
//! ```
//! use mahimahi_types::TestCommittee;
//! use mahimahi_dag::DagBuilder;
//!
//! let setup = TestCommittee::new(4, 7);
//! let mut builder = DagBuilder::new(setup);
//! builder.add_full_round(); // round 1: everyone references everyone
//! builder.add_full_round(); // round 2
//! let store = builder.store();
//! assert_eq!(store.highest_round(), 2);
//! assert_eq!(store.blocks_at_round(2).len(), 4);
//! ```

mod builder;
mod store;
mod traversal;

pub use builder::{BlockSpec, DagBuilder};
pub use store::{BlockStore, InsertResult, StoreError};
