//! Property test for at-source fault attribution: over random DAG builds
//! with randomly placed equivocations ([`BlockSpec::with_tag`]), every
//! proof the store emits must (1) verify self-contained against the
//! committee and (2) name an author that genuinely produced conflicting
//! blocks — never a correct one. Completeness is checked too: every author
//! that equivocated in some round is named by at least one proof.

use mahimahi_dag::{BlockSpec, DagBuilder};
use mahimahi_types::{AuthorityIndex, TestCommittee};
use proptest::prelude::*;
use std::collections::HashSet;

const COMMITTEE: u32 = 4;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn emitted_proofs_verify_and_never_name_correct_authors(
        seed in 0u64..1_000,
        rounds in 1usize..6,
        // Bitmask over (round, author): which slots equivocate, up to
        // 5 rounds × 4 authors. Forks per equivocation in 2..=3.
        equivocation_mask in 0u32..(1 << 20),
        forks in 2u64..=3,
    ) {
        let setup = TestCommittee::new(COMMITTEE as usize, seed);
        let committee = setup.committee().clone();
        let mut dag = DagBuilder::new(setup);
        let mut equivocated: HashSet<AuthorityIndex> = HashSet::new();

        for round in 0..rounds {
            let mut specs = Vec::new();
            for author in 0..COMMITTEE {
                let bit = round as u32 * COMMITTEE + author;
                if equivocation_mask & (1 << bit) != 0 {
                    // Distinct tags ⇒ distinct digests in the same slot.
                    for tag in 1..=forks {
                        specs.push(BlockSpec::new(author).with_tag(tag));
                    }
                    equivocated.insert(AuthorityIndex(author));
                } else {
                    specs.push(BlockSpec::new(author));
                }
            }
            dag.add_round(specs);
        }

        let proofs = dag.store_mut().take_equivocation_evidence();
        let mut named: HashSet<AuthorityIndex> = HashSet::new();
        for proof in &proofs {
            // Soundness: self-contained verification succeeds and the named
            // author really did sign conflicting blocks.
            prop_assert_eq!(proof.verify(&committee), Ok(()), "proof {:?}", proof);
            prop_assert!(
                equivocated.contains(&proof.author()),
                "proof names correct author {:?} (equivocators: {:?})",
                proof.author(),
                equivocated
            );
            prop_assert_eq!(proof.first().author(), proof.second().author());
            prop_assert_eq!(proof.first().round(), proof.second().round());
            prop_assert!(proof.first().digest() != proof.second().digest());
            named.insert(proof.author());
        }
        // Completeness: every equivocator is named by some proof, and the
        // store's live view agrees.
        prop_assert_eq!(&named, &equivocated);
        let live: HashSet<AuthorityIndex> = dag.store().equivocators().iter().collect();
        prop_assert_eq!(&live, &equivocated);
        // Drain is one-shot.
        prop_assert!(dag.store_mut().take_equivocation_evidence().is_empty());
    }
}
