//! Property tests for the structural lemmas of Appendix C that live at the
//! DAG level (independent of the commit rule).

use mahimahi_dag::{BlockSpec, DagBuilder};
use mahimahi_types::TestCommittee;
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Builds `rounds` rounds where every author references a random quorum.
fn random_quorum_dag(n: usize, rounds: u64, seed: u64) -> DagBuilder {
    let setup = TestCommittee::new(n, seed);
    let quorum = setup.committee().quorum_threshold();
    let mut dag = DagBuilder::new(setup);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for _ in 0..rounds {
        let specs = (0..n as u32)
            .map(|author| {
                let mut others: Vec<u32> = (0..n as u32).filter(|&a| a != author).collect();
                others.shuffle(&mut rng);
                others.truncate(quorum - 1);
                BlockSpec::new(author).with_parent_authors(others)
            })
            .collect();
        dag.add_round(specs);
    }
    dag
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Lemma 10 (common core): for every round `r`, some round-`r` block is
    /// in the causal history of *every* round-`r+2` block — whatever the
    /// (quorum-respecting) reference pattern.
    #[test]
    fn common_core_exists(
        n in prop_oneof![Just(4usize), Just(7), Just(10)],
        seed in 0u64..100_000,
    ) {
        let rounds = 6u64;
        let dag = random_quorum_dag(n, rounds, seed);
        let store = dag.store();
        for r in 1..=(rounds - 2) {
            let core_exists = store.blocks_at_round(r).iter().any(|candidate| {
                let candidate_ref = candidate.reference();
                store
                    .blocks_at_round(r + 2)
                    .iter()
                    .all(|later| store.is_link(&candidate_ref, &later.reference()))
            });
            prop_assert!(core_exists, "no common core at round {} (n = {})", r, n);
        }
    }

    /// Observation 1: a block votes for at most one block per slot, no
    /// matter how many equivocations the slot holds or how they are
    /// referenced.
    #[test]
    fn votes_are_unique_per_slot(
        seed in 0u64..100_000,
        variants in 2usize..4,
    ) {
        let setup = TestCommittee::new(4, seed);
        let mut dag = DagBuilder::new(setup);
        dag.add_full_round();
        // Author 0 equivocates `variants` ways at round 2.
        let mut specs = vec![BlockSpec::new(1), BlockSpec::new(2), BlockSpec::new(3)];
        for variant in 0..variants {
            specs.push(BlockSpec::new(0).with_tag(variant as u64 + 1));
        }
        let r2 = dag.add_round(specs);
        let equivocations: Vec<_> = r2.iter().filter(|b| b.author.0 == 0).copied().collect();
        prop_assert_eq!(equivocations.len(), variants);
        // Round 3+4: full references (everyone sees every equivocation).
        dag.add_full_round();
        let r4 = dag.add_full_round();
        let store = dag.store();
        for vote in &r4 {
            let votes: usize = equivocations
                .iter()
                .filter(|candidate| {
                    let block = store.get(candidate).unwrap().clone();
                    store.is_vote(vote, &block)
                })
                .count();
            prop_assert!(votes <= 1, "{} voted {} times for one slot", vote, votes);
        }
    }

    /// Lemma 2 at the DAG level: at most one block per slot can gather a
    /// certificate, for any reference pattern and number of equivocations.
    #[test]
    fn at_most_one_certified_block_per_slot(
        seed in 0u64..100_000,
    ) {
        let setup = TestCommittee::new(4, seed);
        let quorum = setup.committee().quorum_threshold();
        let mut dag = DagBuilder::new(setup);
        dag.add_full_round();
        let r1 = dag.add_round(vec![
            BlockSpec::new(0).with_tag(1),
            BlockSpec::new(0).with_tag(2),
            BlockSpec::new(1),
            BlockSpec::new(2),
            BlockSpec::new(3),
        ]);
        let equivocations: Vec<_> = r1.iter().filter(|b| b.author.0 == 0).copied().collect();
        // Random split: each later author extends a random equivocation.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..3 {
            let r = dag.current_round();
            let specs = (0..4u32)
                .map(|author| {
                    if r == 2 {
                        // First round after the equivocation: pick a variant.
                        let pick = *equivocations.choose(&mut rng).unwrap();
                        let others: Vec<_> = dag
                            .store()
                            .blocks_at_round(2)
                            .iter()
                            .map(|b| b.reference())
                            .filter(|b| b.author.0 != 0)
                            .collect();
                        let mut parents = vec![dag.tip(author)];
                        parents.push(pick);
                        parents.extend(others);
                        BlockSpec::new(author).with_explicit_parents(parents)
                    } else {
                        BlockSpec::new(author)
                    }
                })
                .collect();
            dag.add_round(specs);
        }
        let store = dag.store();
        let certify_round = 2 + 3; // w = 4 certify round for slot round 2
        let certified: usize = equivocations
            .iter()
            .filter(|candidate| {
                let block = store.get(candidate).unwrap().clone();
                store
                    .authorities_with(certify_round, |cert| store.is_cert(cert, &block))
                    .len()
                    >= quorum
            })
            .count();
        prop_assert!(certified <= 1, "{} equivocations certified", certified);
    }
}
