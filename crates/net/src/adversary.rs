//! Delivery-schedule adversaries.
//!
//! The paper analyzes Mahi-Mahi under two network models (Section 2.3): the
//! classic *asynchronous model*, where the adversary fully controls the
//! message schedule, and the *random network model*, where each validator
//! advances rounds with a uniformly random `2f + 1` subset of the previous
//! round. Both are implemented here as post-processors over the physical
//! arrival time computed by the latency/bandwidth models: an adversary can
//! only delay messages (asynchrony permits arbitrary finite delays), never
//! drop, forge, or reorder within a link.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::time::{self, Time};

/// What the adversary learns about a message when scheduling it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageMeta {
    /// Sending node.
    pub from: usize,
    /// Receiving node.
    pub to: usize,
    /// Protocol round the payload belongs to (0 when not applicable).
    pub round: u64,
    /// Serialized payload size in bytes.
    pub size: usize,
}

/// A message-delay adversary.
pub trait Adversary: Send {
    /// Returns the (possibly delayed) delivery time for a message that
    /// would physically arrive at `arrival`.
    ///
    /// Implementations must not return a time earlier than `arrival`
    /// (asynchronous adversaries can delay, not accelerate).
    fn schedule(&mut self, meta: MessageMeta, arrival: Time) -> Time;
}

/// The benign network: no interference.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoAdversary;

impl Adversary for NoAdversary {
    fn schedule(&mut self, _meta: MessageMeta, arrival: Time) -> Time {
        arrival
    }
}

/// The *random network model* (Section 2.3): for every `(recipient, round)`
/// the adversary picks a uniformly random subset of `prompt` senders whose
/// blocks arrive unchanged; all other senders' round-`r` blocks are held
/// back by `hold` extra time, so the recipient advances with a random
/// `2f + 1` subset.
#[derive(Debug)]
pub struct RandomSubsetAdversary {
    nodes: usize,
    /// Number of senders delivered promptly per (recipient, round).
    prompt: usize,
    /// Extra delay applied to the held-back senders.
    hold: Time,
    rng: ChaCha8Rng,
    /// Cache of the prompt subset per (recipient, round).
    subsets: std::collections::HashMap<(usize, u64), Vec<usize>>,
}

impl RandomSubsetAdversary {
    /// Creates the model for `nodes` validators, delivering `prompt`
    /// senders immediately and holding the rest back by `hold`.
    pub fn new(nodes: usize, prompt: usize, hold: Time, seed: u64) -> Self {
        RandomSubsetAdversary {
            nodes,
            prompt: prompt.min(nodes),
            hold,
            rng: ChaCha8Rng::seed_from_u64(seed),
            subsets: std::collections::HashMap::new(),
        }
    }

    fn prompt_subset(&mut self, to: usize, round: u64) -> &[usize] {
        let nodes = self.nodes;
        let prompt = self.prompt;
        let rng = &mut self.rng;
        self.subsets.entry((to, round)).or_insert_with(|| {
            // Fisher–Yates prefix: a uniform `prompt`-subset of senders.
            // The recipient itself is always prompt (local block).
            let mut candidates: Vec<usize> = (0..nodes).filter(|&n| n != to).collect();
            for i in 0..prompt.saturating_sub(1).min(candidates.len()) {
                let j = rng.gen_range(i..candidates.len());
                candidates.swap(i, j);
            }
            let mut subset: Vec<usize> = candidates
                .into_iter()
                .take(prompt.saturating_sub(1))
                .collect();
            subset.push(to);
            subset
        })
    }
}

impl Adversary for RandomSubsetAdversary {
    fn schedule(&mut self, meta: MessageMeta, arrival: Time) -> Time {
        if meta.round == 0 {
            return arrival;
        }
        let hold = self.hold;
        if self.prompt_subset(meta.to, meta.round).contains(&meta.from) {
            arrival
        } else {
            arrival + hold
        }
    }
}

/// A continuously active asynchronous adversary that rotates its targets:
/// in every window of `period` rounds it delays all blocks authored by a
/// moving set of `targets` validators by `extra`, attempting to keep their
/// blocks out of vote-round causal histories (the attack Mahi-Mahi's
/// after-the-fact leader election defends against).
#[derive(Debug, Clone, Copy)]
pub struct RotatingDelayAdversary {
    nodes: usize,
    targets: usize,
    period: u64,
    extra: Time,
}

impl RotatingDelayAdversary {
    /// Delays `targets` rotating authors' blocks by `extra`, rotating every
    /// `period` rounds.
    pub fn new(nodes: usize, targets: usize, period: u64, extra: Time) -> Self {
        RotatingDelayAdversary {
            nodes,
            targets: targets.min(nodes),
            period: period.max(1),
            extra,
        }
    }

    fn is_target(&self, author: usize, round: u64) -> bool {
        let window = round / self.period;
        let start = (window as usize * self.targets) % self.nodes;
        (0..self.targets).any(|k| (start + k) % self.nodes == author)
    }
}

impl Adversary for RotatingDelayAdversary {
    fn schedule(&mut self, meta: MessageMeta, arrival: Time) -> Time {
        if meta.round > 0 && self.is_target(meta.from, meta.round) && meta.from != meta.to {
            arrival + self.extra
        } else {
            arrival
        }
    }
}

/// A network partition separating node groups until `heals_at`: cross-group
/// messages sent before the healing time are delivered no earlier than
/// `heals_at` (plus their residual flight time).
#[derive(Debug, Clone)]
pub struct PartitionAdversary {
    /// `group[i]` = partition group of node `i`.
    groups: Vec<usize>,
    heals_at: Time,
}

impl PartitionAdversary {
    /// Partitions nodes by `groups` (same value = same side) until
    /// `heals_at`.
    pub fn new(groups: Vec<usize>, heals_at: Time) -> Self {
        PartitionAdversary { groups, heals_at }
    }

    /// Splits the first `minority` nodes from the rest.
    pub fn split_first(nodes: usize, minority: usize, heals_at: Time) -> Self {
        let groups = (0..nodes).map(|n| usize::from(n < minority)).collect();
        Self::new(groups, heals_at)
    }
}

impl Adversary for PartitionAdversary {
    fn schedule(&mut self, meta: MessageMeta, arrival: Time) -> Time {
        if self.groups[meta.from] != self.groups[meta.to] && arrival < self.heals_at {
            // Held at the partition edge; delivered right after healing with
            // a small residual to preserve per-link ordering tendencies.
            self.heals_at + time::MILLISECOND
        } else {
            arrival
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(from: usize, to: usize, round: u64) -> MessageMeta {
        MessageMeta {
            from,
            to,
            round,
            size: 100,
        }
    }

    #[test]
    fn no_adversary_is_identity() {
        let mut adversary = NoAdversary;
        assert_eq!(adversary.schedule(meta(0, 1, 5), 42), 42);
    }

    #[test]
    fn random_subset_promptly_delivers_exactly_the_subset() {
        let mut adversary = RandomSubsetAdversary::new(10, 7, time::from_millis(500), 1);
        let mut prompt = Vec::new();
        for from in 0..10 {
            let scheduled = adversary.schedule(meta(from, 3, 8), 1000);
            if scheduled == 1000 {
                prompt.push(from);
            } else {
                assert_eq!(scheduled, 1000 + time::from_millis(500));
            }
        }
        assert_eq!(prompt.len(), 7);
        // The recipient's own block is always prompt.
        assert!(prompt.contains(&3));
        // Same (recipient, round) gives a stable subset.
        assert_eq!(adversary.schedule(meta(prompt[0], 3, 8), 2000), 2000);
    }

    #[test]
    fn random_subset_differs_across_rounds_and_recipients() {
        let mut adversary = RandomSubsetAdversary::new(10, 7, time::from_millis(500), 2);
        let subset_for = |adversary: &mut RandomSubsetAdversary, to: usize, round: u64| {
            (0..10)
                .filter(|&from| adversary.schedule(meta(from, to, round), 0) == 0)
                .collect::<Vec<_>>()
        };
        let a = subset_for(&mut adversary, 0, 1);
        let mut all_same = true;
        for round in 2..20 {
            if subset_for(&mut adversary, 0, round) != a {
                all_same = false;
            }
        }
        assert!(!all_same, "subsets never varied across rounds");
    }

    #[test]
    fn random_subset_ignores_non_round_traffic() {
        let mut adversary = RandomSubsetAdversary::new(4, 3, time::from_millis(500), 3);
        for from in 0..4 {
            assert_eq!(adversary.schedule(meta(from, 0, 0), 777), 777);
        }
    }

    #[test]
    fn rotating_adversary_delays_current_targets_only() {
        let mut adversary = RotatingDelayAdversary::new(4, 1, 5, time::from_millis(900));
        // Window 0 (rounds 0..5): target author 0.
        assert_eq!(
            adversary.schedule(meta(0, 1, 3), 100),
            100 + time::from_millis(900)
        );
        assert_eq!(adversary.schedule(meta(1, 2, 3), 100), 100);
        // Own messages (loopback) are never delayed.
        assert_eq!(adversary.schedule(meta(0, 0, 3), 100), 100);
        // Window 1 (rounds 5..10): target author 1.
        assert_eq!(adversary.schedule(meta(0, 1, 7), 100), 100);
        assert_eq!(
            adversary.schedule(meta(1, 2, 7), 100),
            100 + time::from_millis(900)
        );
    }

    #[test]
    fn partition_holds_cross_group_until_heal() {
        let mut adversary = PartitionAdversary::split_first(4, 1, time::from_secs(10));
        // Node 0 vs nodes 1..3.
        let held = adversary.schedule(meta(0, 1, 2), time::from_secs(1));
        assert!(held > time::from_secs(10));
        // Same side: unaffected.
        assert_eq!(
            adversary.schedule(meta(1, 2, 2), time::from_secs(1)),
            time::from_secs(1)
        );
        // After healing: unaffected.
        assert_eq!(
            adversary.schedule(meta(0, 1, 2), time::from_secs(11)),
            time::from_secs(11)
        );
    }
}
