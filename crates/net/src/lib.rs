//! Deterministic discrete-event network simulator.
//!
//! The paper's evaluation runs on AWS `m5d.8xlarge` machines across five
//! regions (Ohio, Oregon, Cape Town, Hong Kong, Milan) with 10 Gbps links.
//! This crate is the synthetic substitute (DESIGN.md §3): a virtual-clock
//! message simulator reproducing the quantities that determine the
//! protocols' performance shape —
//!
//! - **propagation delay**: a per-region-pair one-way delay matrix with
//!   jitter ([`GeoLatency`]), or simpler models for unit tests;
//! - **serialization delay**: a per-sender egress bandwidth model
//!   ([`SimNetwork`]) that makes broadcast bandwidth the throughput
//!   bottleneck, as in the real system;
//! - **delivery schedule control**: pluggable [`Adversary`] policies
//!   implementing the paper's network models — benign WAN, the *random
//!   network model* (each validator advances with a uniformly random
//!   `2f + 1` subset), and the *asynchronous adversary* (targeted delays),
//!   plus healable partitions;
//! - **per-link FIFO**: messages between a pair of nodes never reorder
//!   (the implementation uses raw TCP).
//!
//! Everything is seeded: the same seed reproduces the same run bit-for-bit.

mod adversary;
mod latency;
mod network;
pub mod time;

pub use adversary::{
    Adversary, MessageMeta, NoAdversary, PartitionAdversary, RandomSubsetAdversary,
    RotatingDelayAdversary,
};
pub use latency::{GeoLatency, LatencyModel, UniformLatency, AWS_REGIONS};
pub use network::{Envelope, NetworkConfig, SimNetwork};
pub use time::Time;
