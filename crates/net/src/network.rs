//! The simulated message network: event queue, bandwidth, FIFO links.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use crate::adversary::{Adversary, MessageMeta};
use crate::latency::LatencyModel;
use crate::time::Time;

/// Static configuration of the simulated network fabric.
#[derive(Debug, Clone, Copy)]
pub struct NetworkConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Per-node egress bandwidth in bytes per second (the paper's machines
    /// have 10 Gbps ≈ 1.25 GB/s).
    pub egress_bytes_per_sec: f64,
    /// RNG seed for latency sampling.
    pub seed: u64,
}

impl NetworkConfig {
    /// The paper's machine profile: 10 Gbps NICs.
    pub fn aws(nodes: usize, seed: u64) -> Self {
        NetworkConfig {
            nodes,
            egress_bytes_per_sec: 1.25e9,
            seed,
        }
    }
}

/// A message in flight (or delivered).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<P> {
    /// Simulated delivery time.
    pub deliver_at: Time,
    /// Sender node.
    pub from: usize,
    /// Recipient node.
    pub to: usize,
    /// Opaque payload.
    pub payload: P,
}

/// The simulated network: computes delivery times from latency, bandwidth,
/// the adversary, and per-link FIFO ordering, and hands back messages in
/// global time order.
///
/// # Example
///
/// ```
/// use mahimahi_net::{NetworkConfig, SimNetwork, UniformLatency, NoAdversary};
///
/// let mut net = SimNetwork::new(
///     NetworkConfig { nodes: 3, egress_bytes_per_sec: 1e9, seed: 7 },
///     UniformLatency::new(1_000, 2_000),
///     NoAdversary,
/// );
/// net.send(0, 0, 1, 512, 1, "hello");
/// let envelope = net.next_delivery().unwrap();
/// assert_eq!(envelope.to, 1);
/// assert!(envelope.deliver_at >= 1_000);
/// ```
pub struct SimNetwork<P, L, A> {
    config: NetworkConfig,
    latency: L,
    adversary: A,
    rng: ChaCha8Rng,
    /// Per-node egress NIC availability (serialization queueing).
    egress_busy_until: Vec<Time>,
    /// Per-link last delivery time (TCP FIFO), dense over the `n × n`
    /// routing table at `from * nodes + to` — every message consults this
    /// on the send path, and at n = 50 an index beats a hash of the pair.
    link_last_delivery: Vec<Time>,
    /// In-flight messages keyed by (time, sequence) for deterministic order.
    queue: BinaryHeap<Reverse<(Time, u64, usize)>>,
    /// Payload storage parallel to queue entries.
    payloads: HashMap<u64, Envelope<P>>,
    sequence: u64,
    /// Total bytes ever offered to the network (statistics).
    bytes_sent: u64,
    messages_sent: u64,
}

impl<P, L: LatencyModel, A: Adversary> SimNetwork<P, L, A> {
    /// Creates a network over `config` with the given latency model and
    /// adversary.
    pub fn new(config: NetworkConfig, latency: L, adversary: A) -> Self {
        SimNetwork {
            rng: ChaCha8Rng::seed_from_u64(config.seed),
            egress_busy_until: vec![0; config.nodes],
            link_last_delivery: vec![0; config.nodes * config.nodes],
            queue: BinaryHeap::new(),
            payloads: HashMap::new(),
            sequence: 0,
            bytes_sent: 0,
            messages_sent: 0,
            config,
            latency,
            adversary,
        }
    }

    /// The number of nodes.
    pub fn nodes(&self) -> usize {
        self.config.nodes
    }

    /// Queues a message from `from` to `to` at simulated time `now`.
    ///
    /// `size` is the serialized payload size (drives the bandwidth model),
    /// `round` is the protocol round exposed to the adversary (0 = control
    /// traffic). Returns the scheduled delivery time.
    pub fn send(
        &mut self,
        now: Time,
        from: usize,
        to: usize,
        size: usize,
        round: u64,
        payload: P,
    ) -> Time {
        assert!(
            from < self.config.nodes && to < self.config.nodes,
            "node out of range"
        );
        // Serialization: the sender's NIC transmits messages back to back.
        let tx_time = (size as f64 / self.config.egress_bytes_per_sec * 1e6).ceil() as Time;
        let tx_start = now.max(self.egress_busy_until[from]);
        self.egress_busy_until[from] = tx_start + tx_time;
        // Propagation.
        let flight = self.latency.sample(from, to, &mut self.rng);
        let physical_arrival = tx_start + tx_time + flight;
        // Adversarial scheduling (may only delay).
        let meta = MessageMeta {
            from,
            to,
            round,
            size,
        };
        let scheduled = self.adversary.schedule(meta, physical_arrival);
        debug_assert!(
            scheduled >= physical_arrival,
            "adversary accelerated a message"
        );
        // Per-link FIFO (TCP): never deliver before an earlier send.
        let link = from * self.config.nodes + to;
        let deliver_at = scheduled.max(self.link_last_delivery[link]);
        self.link_last_delivery[link] = deliver_at;

        self.sequence += 1;
        self.bytes_sent += size as u64;
        self.messages_sent += 1;
        self.queue.push(Reverse((deliver_at, self.sequence, to)));
        self.payloads.insert(
            self.sequence,
            Envelope {
                deliver_at,
                from,
                to,
                payload,
            },
        );
        deliver_at
    }

    /// Broadcasts copies of `payload` to every node except the sender.
    /// Returns the latest scheduled delivery time.
    pub fn broadcast(&mut self, now: Time, from: usize, size: usize, round: u64, payload: P) -> Time
    where
        P: Clone,
    {
        let mut latest = now;
        for to in 0..self.config.nodes {
            if to != from {
                latest = latest.max(self.send(now, from, to, size, round, payload.clone()));
            }
        }
        latest
    }

    /// The delivery time of the earliest in-flight message.
    pub fn next_delivery_time(&self) -> Option<Time> {
        self.queue.peek().map(|Reverse((time, _, _))| *time)
    }

    /// Removes and returns the earliest in-flight message.
    pub fn next_delivery(&mut self) -> Option<Envelope<P>> {
        let Reverse((_, sequence, _)) = self.queue.pop()?;
        Some(
            self.payloads
                .remove(&sequence)
                .expect("payload stored with queue entry"),
        )
    }

    /// Number of messages still in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Total bytes offered to the network so far.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Total messages offered to the network so far.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::NoAdversary;
    use crate::latency::UniformLatency;
    use crate::time;

    fn network(nodes: usize, bytes_per_sec: f64) -> SimNetwork<u32, UniformLatency, NoAdversary> {
        SimNetwork::new(
            NetworkConfig {
                nodes,
                egress_bytes_per_sec: bytes_per_sec,
                seed: 5,
            },
            UniformLatency::new(time::from_millis(10), time::from_millis(10)),
            NoAdversary,
        )
    }

    #[test]
    fn messages_deliver_in_time_order() {
        let mut net = network(4, 1e12);
        net.send(100, 0, 1, 10, 1, 1);
        net.send(0, 1, 2, 10, 1, 2);
        net.send(50, 2, 3, 10, 1, 3);
        let mut times = Vec::new();
        while let Some(envelope) = net.next_delivery() {
            times.push(envelope.deliver_at);
        }
        assert_eq!(times.len(), 3);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn bandwidth_serializes_back_to_back_sends() {
        // 1 MB/s: a 100 kB message takes 100 ms to push out.
        let mut net = network(2, 1e6);
        let first = net.send(0, 0, 1, 100_000, 1, 1);
        let second = net.send(0, 0, 1, 100_000, 1, 2);
        // First: 100 ms tx + 10 ms flight; second waits for the NIC.
        assert_eq!(first, time::from_millis(110));
        assert_eq!(second, time::from_millis(210));
    }

    #[test]
    fn broadcast_shares_the_nic() {
        let mut net = network(5, 1e6);
        // 100 kB broadcast to 4 peers: the last copy leaves the NIC at
        // 400 ms.
        let latest = net.broadcast(0, 0, 100_000, 1, 9);
        assert_eq!(latest, time::from_millis(410));
        assert_eq!(net.in_flight(), 4);
        assert_eq!(net.bytes_sent(), 400_000);
        assert_eq!(net.messages_sent(), 4);
    }

    #[test]
    fn per_link_fifo_never_reorders() {
        // Jittery latency could reorder; the FIFO clamp must prevent it.
        let mut net = SimNetwork::new(
            NetworkConfig {
                nodes: 2,
                egress_bytes_per_sec: 1e12,
                seed: 11,
            },
            UniformLatency::new(time::from_millis(1), time::from_millis(100)),
            NoAdversary,
        );
        for i in 0..50u32 {
            net.send(i as Time, 0, 1, 10, 1, i);
        }
        let mut last_payload = None;
        while let Some(envelope) = net.next_delivery() {
            if let Some(previous) = last_payload {
                assert!(envelope.payload > previous, "link reordered messages");
            }
            last_payload = Some(envelope.payload);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed: u64| {
            let mut net = SimNetwork::new(
                NetworkConfig {
                    nodes: 3,
                    egress_bytes_per_sec: 1e9,
                    seed,
                },
                UniformLatency::new(time::from_millis(1), time::from_millis(50)),
                NoAdversary,
            );
            (0..20)
                .map(|i| net.send(0, 0, 1 + (i as usize % 2), 100, 1, i))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    #[should_panic(expected = "node out of range")]
    fn rejects_unknown_nodes() {
        let mut net = network(2, 1e9);
        net.send(0, 0, 5, 10, 1, 1);
    }
}
