//! Simulated time.
//!
//! All simulated timestamps and durations are microseconds held in a `u64`.
//! Microsecond resolution keeps arithmetic exact (no floating-point clock
//! drift) while spanning ~584,000 years of simulated time.

/// A point in (or span of) simulated time, in microseconds.
pub type Time = u64;

/// One microsecond.
pub const MICROSECOND: Time = 1;
/// One millisecond.
pub const MILLISECOND: Time = 1_000;
/// One second.
pub const SECOND: Time = 1_000_000;

/// Converts milliseconds to [`Time`].
pub const fn from_millis(ms: u64) -> Time {
    ms * MILLISECOND
}

/// Converts (fractional) milliseconds to [`Time`].
pub fn from_millis_f64(ms: f64) -> Time {
    (ms * MILLISECOND as f64).round() as Time
}

/// Converts seconds to [`Time`].
pub const fn from_secs(secs: u64) -> Time {
    secs * SECOND
}

/// Renders a [`Time`] as fractional seconds.
pub fn as_secs_f64(time: Time) -> f64 {
    time as f64 / SECOND as f64
}

/// Renders a [`Time`] as fractional milliseconds.
pub fn as_millis_f64(time: Time) -> f64 {
    time as f64 / MILLISECOND as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(from_millis(250), 250_000);
        assert_eq!(from_secs(2), 2_000_000);
        assert_eq!(as_secs_f64(1_500_000), 1.5);
        assert_eq!(as_millis_f64(1_500), 1.5);
        assert_eq!(from_millis_f64(0.5), 500);
    }
}
