//! Propagation-delay models.

use rand::Rng;

use crate::time::{self, Time};

/// A model of one-way propagation delay between two nodes.
pub trait LatencyModel: Send + Sync {
    /// Samples the one-way delay for a message `from → to`.
    fn sample<R: Rng + ?Sized>(&self, from: usize, to: usize, rng: &mut R) -> Time
    where
        Self: Sized;

    /// The mean one-way delay `from → to` (used by analytical models).
    fn mean(&self, from: usize, to: usize) -> Time;
}

/// Uniform delay in `[min, max]`, independent of endpoints. Used by unit
/// tests and the pure-asynchrony experiments.
#[derive(Debug, Clone, Copy)]
pub struct UniformLatency {
    min: Time,
    max: Time,
}

impl UniformLatency {
    /// Creates a uniform model over `[min, max]` microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn new(min: Time, max: Time) -> Self {
        assert!(min <= max, "empty latency interval");
        UniformLatency { min, max }
    }
}

impl LatencyModel for UniformLatency {
    fn sample<R: Rng + ?Sized>(&self, _from: usize, _to: usize, rng: &mut R) -> Time {
        rng.gen_range(self.min..=self.max)
    }

    fn mean(&self, _from: usize, _to: usize) -> Time {
        (self.min + self.max) / 2
    }
}

/// The five AWS regions of the paper's evaluation (Section 5.1), with the
/// one-way delay matrix between them in milliseconds.
///
/// Values are half the publicly reported inter-region round-trip times
/// (cloudping-style measurements), rounded; intra-region delay is ~1 ms.
/// Absolute accuracy is not required — the figures compare protocols on the
/// *same* substrate (see EXPERIMENTS.md).
pub const AWS_REGIONS: [(&str, [f64; 5]); 5] = [
    ("us-east-2 (Ohio)", [1.0, 25.0, 117.0, 97.0, 47.0]),
    ("us-west-2 (Oregon)", [25.0, 1.0, 138.0, 72.0, 68.0]),
    ("af-south-1 (Cape Town)", [117.0, 138.0, 2.0, 134.0, 74.0]),
    ("ap-east-1 (Hong Kong)", [97.0, 72.0, 134.0, 1.0, 88.0]),
    ("eu-south-1 (Milan)", [47.0, 68.0, 74.0, 88.0, 1.0]),
];

/// Geo-replicated delay model: nodes are assigned round-robin to the five
/// AWS regions (as the paper distributes validators "as equally as
/// possible") and delays follow the region matrix plus multiplicative and
/// exponential-tail jitter.
#[derive(Debug, Clone)]
pub struct GeoLatency {
    /// `region[i]` = region index of node `i`.
    assignment: Vec<usize>,
    /// Mean one-way delay between regions, microseconds.
    matrix: [[Time; 5]; 5],
    /// Multiplicative jitter half-width (e.g. 0.05 → ±5%).
    jitter: f64,
    /// Mean of the additive exponential tail, microseconds.
    tail_mean: Time,
}

impl GeoLatency {
    /// Creates the paper's five-region WAN for `nodes` validators.
    pub fn aws(nodes: usize) -> Self {
        let assignment = (0..nodes).map(|i| i % AWS_REGIONS.len()).collect();
        let mut matrix = [[0; 5]; 5];
        for (i, (_, row)) in AWS_REGIONS.iter().enumerate() {
            for (j, &ms) in row.iter().enumerate() {
                matrix[i][j] = time::from_millis_f64(ms);
            }
        }
        GeoLatency {
            assignment,
            matrix,
            jitter: 0.05,
            tail_mean: time::from_millis(2),
        }
    }

    /// Overrides the jitter parameters (for sensitivity experiments).
    pub fn with_jitter(mut self, jitter: f64, tail_mean: Time) -> Self {
        self.jitter = jitter;
        self.tail_mean = tail_mean;
        self
    }

    /// The region index of `node`.
    pub fn region_of(&self, node: usize) -> usize {
        self.assignment[node]
    }

    /// The region display name of `node`.
    pub fn region_name(&self, node: usize) -> &'static str {
        AWS_REGIONS[self.assignment[node]].0
    }
}

impl LatencyModel for GeoLatency {
    fn sample<R: Rng + ?Sized>(&self, from: usize, to: usize, rng: &mut R) -> Time {
        let base = self.matrix[self.assignment[from]][self.assignment[to]] as f64;
        // Multiplicative jitter uniform in [1 − j, 1 + j].
        let factor = 1.0 + self.jitter * (rng.gen::<f64>() * 2.0 - 1.0);
        // Additive exponential tail via inverse transform (occasional slow
        // packets; keeps the distribution right-skewed like real WANs).
        let u: f64 = rng.gen::<f64>().max(1e-12);
        let tail = -(self.tail_mean as f64) * u.ln();
        (base * factor + tail).round() as Time
    }

    fn mean(&self, from: usize, to: usize) -> Time {
        self.matrix[self.assignment[from]][self.assignment[to]] + self.tail_mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_bounds() {
        let model = UniformLatency::new(100, 200);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let sample = model.sample(0, 1, &mut rng);
            assert!((100..=200).contains(&sample));
        }
        assert_eq!(model.mean(0, 1), 150);
    }

    #[test]
    #[should_panic(expected = "empty latency interval")]
    fn uniform_rejects_inverted_bounds() {
        let _ = UniformLatency::new(5, 1);
    }

    #[test]
    fn matrix_is_symmetric() {
        for (i, (_, row)) in AWS_REGIONS.iter().enumerate() {
            for (j, delay) in row.iter().enumerate() {
                assert_eq!(*delay, AWS_REGIONS[j].1[i], "{i},{j}");
            }
        }
    }

    #[test]
    fn geo_assignment_is_round_robin() {
        let model = GeoLatency::aws(12);
        assert_eq!(model.region_of(0), 0);
        assert_eq!(model.region_of(4), 4);
        assert_eq!(model.region_of(5), 0);
        assert!(model.region_name(2).contains("Cape Town"));
    }

    #[test]
    fn geo_samples_cluster_around_the_matrix_entry() {
        let model = GeoLatency::aws(10);
        let mut rng = StdRng::seed_from_u64(7);
        // Nodes 0 (Ohio) and 2 (Cape Town): mean one-way 117 ms.
        let samples: Vec<Time> = (0..2000).map(|_| model.sample(0, 2, &mut rng)).collect();
        let mean = samples.iter().sum::<Time>() as f64 / samples.len() as f64;
        let expected = time::from_millis(117) as f64 + time::from_millis(2) as f64;
        assert!(
            (mean - expected).abs() / expected < 0.05,
            "mean {mean} vs expected {expected}"
        );
        // Right-skew: max well above mean, min not far below base.
        let max = *samples.iter().max().unwrap();
        assert!(max as f64 > mean * 1.05);
    }

    #[test]
    fn same_region_is_fast() {
        let model = GeoLatency::aws(10);
        let mut rng = StdRng::seed_from_u64(9);
        // Nodes 0 and 5 are both in Ohio.
        let sample = model.sample(0, 5, &mut rng);
        assert!(sample < time::from_millis(15), "intra-region {sample}");
    }

    #[test]
    fn geo_samples_are_deterministic_per_seed() {
        let model = GeoLatency::aws(10);
        let a: Vec<Time> = {
            let mut rng = StdRng::seed_from_u64(3);
            (0..10).map(|_| model.sample(1, 3, &mut rng)).collect()
        };
        let b: Vec<Time> = {
            let mut rng = StdRng::seed_from_u64(3);
            (0..10).map(|_| model.sample(1, 3, &mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
