//! Property test for the `Adversary::schedule` contract: an asynchronous
//! adversary may delay a message arbitrarily but must never accelerate it —
//! the returned delivery time is always ≥ the physical arrival time, for
//! every adversary, message metadata, and arrival time.

use mahimahi_net::{
    Adversary, MessageMeta, NoAdversary, PartitionAdversary, RandomSubsetAdversary,
    RotatingDelayAdversary,
};
use proptest::prelude::*;

const NODES: usize = 10;

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn no_adversary_never_accelerates(
        seed in 0u64..1_000,
        from in 0usize..NODES,
        to in 0usize..NODES,
        round in 0u64..200,
        size in 1usize..100_000,
        arrival in 0u64..10_000_000,
        hold in 0u64..2_000_000,
        prompt in 1usize..=NODES,
        targets in 0usize..=NODES,
        period in 1u64..20,
        minority in 0usize..=NODES / 2,
        heals_at in 0u64..10_000_000,
    ) {
        let meta = MessageMeta { from, to, round, size };

        let mut none = NoAdversary;
        prop_assert_eq!(none.schedule(meta, arrival), arrival);

        let mut subset = RandomSubsetAdversary::new(NODES, prompt, hold, seed);
        let scheduled = subset.schedule(meta, arrival);
        prop_assert!(
            scheduled >= arrival,
            "RandomSubset accelerated: {} < {} ({:?})", scheduled, arrival, meta
        );
        prop_assert!(scheduled <= arrival + hold, "RandomSubset over-delayed");

        let mut rotating = RotatingDelayAdversary::new(NODES, targets, period, hold);
        let scheduled = rotating.schedule(meta, arrival);
        prop_assert!(
            scheduled >= arrival,
            "RotatingDelay accelerated: {} < {} ({:?})", scheduled, arrival, meta
        );

        let mut partition = PartitionAdversary::split_first(NODES, minority, heals_at);
        let scheduled = partition.schedule(meta, arrival);
        prop_assert!(
            scheduled >= arrival,
            "Partition accelerated: {} < {} ({:?})", scheduled, arrival, meta
        );
        // Once healed, the partition is transparent.
        if arrival >= heals_at {
            prop_assert_eq!(scheduled, arrival);
        }
    }
}
