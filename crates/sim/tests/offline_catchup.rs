//! `Behavior::Offline` catch-up: a validator that goes dark mid-run and
//! restarts must rebuild the missed suffix through the synchronizer, and
//! its commit sequence must be a prefix-consistent extension of its peers'
//! — never a divergent fork, and not stuck at the outage point.

use mahimahi_net::time;
use mahimahi_sim::{Behavior, LatencyChoice, ProtocolChoice, SimConfig, Simulation};

#[test]
fn offline_validator_catches_up_to_a_prefix_consistent_extension() {
    let outage_start = time::from_secs(2);
    let outage_end = time::from_secs(4);
    let mut config = SimConfig {
        protocol: ProtocolChoice::MahiMahi5 { leaders: 2 },
        committee_size: 4,
        duration: time::from_secs(8),
        txs_per_second_per_validator: 60,
        latency: LatencyChoice::Uniform {
            min: time::from_millis(20),
            max: time::from_millis(60),
        },
        seed: 606,
        ..SimConfig::default()
    };
    config.behaviors = vec![(
        2,
        Behavior::Offline {
            from: outage_start,
            until: outage_end,
        },
    )];

    let (report, logs) = Simulation::new(config).run_with_logs();
    assert!(report.committed_transactions > 0, "{report:?}");

    // Prefix consistency across all four logs, including the recovered
    // validator's: catching up must never rewrite or fork the sequence.
    for i in 0..4 {
        for j in (i + 1)..4 {
            let len = logs[i].len().min(logs[j].len());
            assert_eq!(
                &logs[i][..len],
                &logs[j][..len],
                "validators {i} and {j} diverged"
            );
        }
    }

    // The recovered validator is an *extension*: it committed leaders well
    // past the rounds that were current when its outage began, i.e. it
    // resumed committing after the restart instead of freezing at the gap.
    let recovered = &logs[2];
    assert!(!recovered.is_empty(), "validator 2 never committed");
    let last_recovered_round = recovered
        .iter()
        .flatten()
        .map(|leader| leader.round)
        .max()
        .expect("validator 2 committed at least one leader");
    // Rounds advance at least once per max-latency interval while the
    // quorum is up; by the outage start the DAG is far past the first wave.
    let rounds_before_outage = outage_start / time::from_millis(60);
    assert!(
        last_recovered_round > rounds_before_outage / 2,
        "validator 2 stopped committing at round {last_recovered_round}, \
         before its outage window (~round {rounds_before_outage})"
    );

    // And it caught up to its peers, not merely restarted: its log length
    // is within one wave's worth of slots of the longest honest log.
    let longest = logs.iter().map(Vec::len).max().unwrap();
    assert!(
        recovered.len() + 12 >= longest,
        "validator 2 committed {} of {longest} slots — did not catch up",
        recovered.len()
    );
}

/// The same property under the random network model: held-back quorums must
/// not prevent the rejoining validator from filling its gap.
#[test]
fn offline_catchup_survives_the_random_network_model() {
    let mut config = SimConfig {
        protocol: ProtocolChoice::MahiMahi4 { leaders: 2 },
        committee_size: 4,
        duration: time::from_secs(8),
        txs_per_second_per_validator: 60,
        latency: LatencyChoice::Uniform {
            min: time::from_millis(20),
            max: time::from_millis(60),
        },
        adversary: mahimahi_sim::AdversaryChoice::RandomSubset {
            hold: time::from_millis(120),
        },
        seed: 607,
        ..SimConfig::default()
    };
    config.behaviors = vec![(
        1,
        Behavior::Offline {
            from: time::from_secs(3),
            until: time::from_secs(5),
        },
    )];

    let (report, logs) = Simulation::new(config).run_with_logs();
    assert!(report.committed_transactions > 0, "{report:?}");
    for i in 0..4 {
        for j in (i + 1)..4 {
            let len = logs[i].len().min(logs[j].len());
            assert_eq!(
                &logs[i][..len],
                &logs[j][..len],
                "validators {i} and {j} diverged"
            );
        }
    }
    assert!(!logs[1].is_empty(), "rejoined validator never committed");
}
