//! The simulated validator state machine.
//!
//! A [`SimValidator`] is one protocol participant: it maintains its local
//! DAG ([`BlockStore`]), produces blocks when its round can advance,
//! synchronizes missing ancestry, runs the commit rule through a
//! [`CommitSequencer`], and books transaction latencies for the blocks it
//! authored. It is driven by the [`Simulation`] runner, which owns the
//! network and the clock; handlers return [`Action`]s for the runner to
//! perform.
//!
//! [`Simulation`]: crate::runner::Simulation

use mahimahi_core::{CommitDecision, CommitSequencer, EvidencePool, ProtocolCommitter};
use mahimahi_dag::{BlockStore, InsertResult};
use mahimahi_net::time::Time;
use mahimahi_types::{
    AuthorityIndex, Block, BlockBuilder, BlockRef, EquivocationProof, Round, TestCommittee,
    Transaction,
};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::Arc;

use crate::config::{Behavior, LeaderSchedule};
use crate::message::SimMessage;

/// An effect a validator asks the runner to carry out.
#[derive(Debug)]
pub enum Action {
    /// Send `message` to every other validator.
    Broadcast(SimMessage),
    /// Send `message` to one validator.
    Send(usize, SimMessage),
    /// Transactions authored by this validator just committed; each entry
    /// is the client submission time.
    TxsCommitted(Vec<Time>),
    /// Call `maybe_advance` again no earlier than the given time (the
    /// post-quorum inclusion wait is pending).
    WakeAt(Time),
}

/// One simulated protocol participant.
pub struct SimValidator {
    authority: AuthorityIndex,
    behavior: Behavior,
    /// Whether blocks require certification before entering the DAG (Tusk).
    certified: bool,
    max_block_transactions: usize,
    /// How long to keep collecting previous-round blocks after the quorum
    /// arrived before producing the next round. Real implementations pace
    /// rounds this way so that far-region blocks stay referenced; advancing
    /// at the instant of quorum starves the slowest regions and (with short
    /// waves) skips their leader slots.
    inclusion_wait: Time,
    /// When the quorum for advancing past `round` was first observed.
    quorum_since: Option<Time>,
    /// The protocol's leader timetable (attack strategies precompute the
    /// deterministic coin with it).
    leader_schedule: LeaderSchedule,
    /// Memoized "is this validator an elected leader of round r" answers.
    election_cache: HashMap<Round, bool>,
    /// Messages built but deliberately held back (slow-proposer pacing):
    /// (release time, message), in release order.
    pending_out: VecDeque<(Time, SimMessage)>,
    setup: TestCommittee,
    store: BlockStore,
    /// Verified equivocation convictions, deduplicated per author. Fed by
    /// the store's at-source detection and by gossiped proofs from peers.
    evidence: EvidencePool,
    sequencer: CommitSequencer<Box<dyn ProtocolCommitter>>,
    /// Last round this validator produced a block for.
    round: Round,
    /// Client transactions waiting for inclusion: (id, submit time).
    tx_queue: VecDeque<(u64, Time)>,
    /// Blocks in the local DAG that no stored block references yet —
    /// candidates for the next block's parent list.
    unreferenced: BTreeSet<BlockRef>,
    /// Certified pipeline: proposals awaiting a certificate.
    pending_proposals: HashMap<BlockRef, Arc<Block>>,
    /// Certified pipeline: acknowledgements collected for own proposals.
    ack_votes: HashMap<BlockRef, HashSet<AuthorityIndex>>,
    /// Certified pipeline: own proposals already certified.
    certified_own: HashSet<BlockRef>,
    /// Submission times of transactions in own blocks, resolved at commit.
    own_block_txs: HashMap<BlockRef, Vec<Time>>,
    /// Commit statistics.
    pub(crate) committed_slots: u64,
    pub(crate) skipped_slots: u64,
    pub(crate) sequenced_blocks: u64,
    pub(crate) committed_transactions: u64,
    /// The committed leader sequence (`None` = skipped slot), for safety
    /// checking across validators.
    pub(crate) commit_log: Vec<Option<BlockRef>>,
}

impl SimValidator {
    /// Creates the validator for `authority`.
    #[allow(clippy::too_many_arguments)] // one call site, the runner, builds this from SimConfig
    pub fn new(
        authority: AuthorityIndex,
        setup: TestCommittee,
        committer: Box<dyn ProtocolCommitter>,
        behavior: Behavior,
        certified: bool,
        max_block_transactions: usize,
        inclusion_wait: Time,
        leader_schedule: LeaderSchedule,
    ) -> Self {
        let committee = setup.committee();
        let store = BlockStore::new(committee.size(), committee.quorum_threshold());
        let unreferenced = Block::all_genesis(committee.size())
            .iter()
            .map(Block::reference)
            .collect();
        SimValidator {
            authority,
            behavior,
            certified,
            max_block_transactions,
            inclusion_wait,
            quorum_since: None,
            leader_schedule,
            election_cache: HashMap::new(),
            pending_out: VecDeque::new(),
            evidence: EvidencePool::new(setup.committee().clone()),
            setup,
            store,
            sequencer: CommitSequencer::new(committer),
            round: 0,
            tx_queue: VecDeque::new(),
            unreferenced,
            pending_proposals: HashMap::new(),
            ack_votes: HashMap::new(),
            certified_own: HashSet::new(),
            own_block_txs: HashMap::new(),
            committed_slots: 0,
            skipped_slots: 0,
            sequenced_blocks: 0,
            committed_transactions: 0,
            commit_log: Vec::new(),
        }
    }

    /// The committed leader sequence so far (`None` entries are skipped
    /// slots). Any two honest validators' logs must be prefix-consistent —
    /// the safety property of Lemmas 5–7.
    pub fn commit_log(&self) -> &[Option<BlockRef>] {
        &self.commit_log
    }

    /// The authority this validator runs as.
    pub fn authority(&self) -> AuthorityIndex {
        self.authority
    }

    /// The local DAG.
    pub fn store(&self) -> &BlockStore {
        &self.store
    }

    /// The evidence pool (verified convictions, slashing hooks).
    pub fn evidence(&self) -> &EvidencePool {
        &self.evidence
    }

    /// Mutable evidence pool access (for registering slashing hooks).
    pub fn evidence_mut(&mut self) -> &mut EvidencePool {
        &mut self.evidence
    }

    /// The authorities this validator has convicted of equivocation, in
    /// index order. Honest validators converge on this set (the
    /// `evidence-attribution` oracle of `mahimahi-scenarios` checks it).
    pub fn convicted(&self) -> Vec<AuthorityIndex> {
        self.evidence.convicted()
    }

    /// Last produced round.
    pub fn round(&self) -> Round {
        self.round
    }

    /// Transactions waiting for inclusion.
    pub fn queued_transactions(&self) -> usize {
        self.tx_queue.len()
    }

    fn is_crashed(&self, round: Round) -> bool {
        matches!(self.behavior, Behavior::Crashed { from_round } if round >= from_round)
    }

    /// Whether this validator owns a leader slot of `round`.
    ///
    /// The threshold coin is a deterministic function of the round, so an
    /// attacker holding the dealer's secrets (the strongest rushing
    /// adversary the paper's after-the-fact election defends against) can
    /// evaluate every future election. The simulation's [`TestCommittee`]
    /// carries all coin secrets, which is exactly that power.
    fn is_elected_leader(&mut self, round: Round) -> bool {
        if !self.leader_schedule.is_propose_round(round) {
            return false;
        }
        if let Some(&cached) = self.election_cache.get(&round) {
            return cached;
        }
        let committee = self.setup.committee();
        let certify = self.leader_schedule.certify_round(round);
        let shares: Vec<_> = (0..committee.quorum_threshold())
            .map(|index| {
                self.setup
                    .coin_secret(AuthorityIndex(index as u32))
                    .share_for_round(certify)
            })
            .collect();
        let elected = committee
            .coin_public()
            .combine(certify, &shares)
            .map(|value| {
                (0..self.leader_schedule.leaders).any(|offset| {
                    value.leader_slot(offset, committee.size()) == self.authority.as_u64()
                })
            })
            .unwrap_or(false);
        self.election_cache.insert(round, elected);
        elected
    }

    /// The first `f` peers other than this validator — the "< f + 1"
    /// disclosure set of the withholding attack: too few for any honest
    /// quorum to certify the withheld block.
    fn withholding_targets(&self) -> Vec<usize> {
        let committee = self.setup.committee();
        (0..committee.size())
            .filter(|&peer| peer != self.authority.as_usize())
            .take(committee.f())
            .collect()
    }

    fn is_offline(&self, now: Time) -> bool {
        matches!(self.behavior, Behavior::Offline { from, until }
            if (from..until).contains(&now))
    }

    /// Enqueues client transactions (id, submission time).
    pub fn submit_transactions(&mut self, txs: impl IntoIterator<Item = (u64, Time)>) {
        if self.is_crashed(self.round) {
            return;
        }
        self.tx_queue.extend(txs);
    }

    /// Handles a delivered message, returning follow-up actions.
    pub fn on_message(&mut self, now: Time, from: usize, message: SimMessage) -> Vec<Action> {
        if self.is_crashed(self.round + 1) {
            return Vec::new();
        }
        if self.is_offline(now) {
            // The process is down: in-flight messages addressed to it are
            // lost; the synchronizer repairs the gaps after restart.
            return Vec::new();
        }
        let mut actions = Vec::new();
        match message {
            SimMessage::Block(block) => {
                self.accept_block(block, from, &mut actions);
            }
            SimMessage::Proposal(block) => {
                let reference = block.reference();
                self.pending_proposals.insert(reference, block);
                actions.push(Action::Send(
                    from,
                    SimMessage::Ack {
                        reference,
                        voter: self.authority,
                    },
                ));
            }
            SimMessage::Ack { reference, voter } => {
                if reference.author == self.authority && !self.certified_own.contains(&reference) {
                    let votes = self.ack_votes.entry(reference).or_default();
                    votes.insert(voter);
                    if votes.len() >= self.setup.committee().quorum_threshold() {
                        let signatures = votes.len();
                        self.certified_own.insert(reference);
                        let certificate = SimMessage::Certificate {
                            reference,
                            signatures,
                        };
                        if matches!(self.behavior, Behavior::WithholdingLeader)
                            && self.is_elected_leader(reference.round)
                        {
                            // Certified-DAG variant of the withholding
                            // attack: the proposal was public (acks were
                            // needed), but the certificate that would let
                            // peers admit the leader block reaches fewer
                            // than f + 1 of them.
                            for peer in self.withholding_targets() {
                                actions.push(Action::Send(peer, certificate.clone()));
                            }
                        } else {
                            actions.push(Action::Broadcast(certificate));
                        }
                        // Apply the certificate locally.
                        if let Some(block) = self.pending_proposals.remove(&reference) {
                            self.accept_block(block, from, &mut actions);
                        }
                    }
                }
            }
            SimMessage::Certificate { reference, .. } => {
                if let Some(block) = self.pending_proposals.remove(&reference) {
                    self.accept_block(block, from, &mut actions);
                } else if !self.store.contains(&reference) {
                    // Certificate outran the proposal: fetch the block.
                    actions.push(Action::Send(from, SimMessage::Request(vec![reference])));
                }
            }
            SimMessage::Request(references) => {
                let blocks: Vec<Arc<Block>> = references
                    .iter()
                    .filter_map(|reference| self.store.get(reference).cloned())
                    .collect();
                if !blocks.is_empty() {
                    actions.push(Action::Send(from, SimMessage::Response(blocks)));
                }
                // Evidence catch-up: a peer driving the synchronizer is
                // repairing gaps (e.g. restarting after an outage) and may
                // have missed the one-shot conviction gossip; piggyback
                // this validator's convictions so culprit sets converge
                // even for validators that were down when proofs flooded.
                for (_, proof) in self.evidence.iter() {
                    actions.push(Action::Send(from, SimMessage::Evidence(proof.clone())));
                }
            }
            SimMessage::Response(blocks) => {
                for block in blocks {
                    self.accept_block(block, from, &mut actions);
                }
            }
            SimMessage::Evidence(proof) => {
                self.ingest_evidence(proof, &mut actions);
            }
        }
        actions.extend(self.maybe_advance(now));
        actions.extend(self.try_commit(now));
        actions
    }

    /// Validates and inserts a block, driving the synchronizer on gaps.
    fn accept_block(&mut self, block: Arc<Block>, from: usize, actions: &mut Vec<Action>) {
        if block.verify(self.setup.committee()).is_err() {
            return; // invalid blocks are dropped (paper: discarded)
        }
        match self.store.insert(block) {
            Ok(InsertResult::Inserted(admitted)) => {
                for reference in admitted {
                    self.note_admitted(reference);
                }
                self.harvest_evidence(actions);
            }
            Ok(InsertResult::Pending(missing)) => {
                actions.push(Action::Send(from, SimMessage::Request(missing)));
            }
            Ok(InsertResult::Duplicate) | Ok(InsertResult::BelowGcFloor) => {}
            Err(_) => {}
        }
    }

    /// Collects proofs the store emitted at admission, convicting locally
    /// and gossiping each *new* conviction once.
    fn harvest_evidence(&mut self, actions: &mut Vec<Action>) {
        for proof in self.store.take_equivocation_evidence() {
            self.ingest_evidence(proof, actions);
        }
    }

    /// Convicts through the evidence pool; first-time convictions are
    /// re-broadcast (flood-once gossip), so one detection anywhere reaches
    /// every honest validator even if only a subset ever stores both
    /// conflicting blocks. Invalid proofs from untrusted peers are dropped.
    fn ingest_evidence(&mut self, proof: EquivocationProof, actions: &mut Vec<Action>) {
        if self.evidence.submit(proof.clone()) == Ok(true) {
            actions.push(Action::Broadcast(SimMessage::Evidence(proof)));
        }
    }

    /// Bookkeeping for a block that joined the DAG: maintain the
    /// unreferenced-tips set.
    fn note_admitted(&mut self, reference: BlockRef) {
        let parents: Vec<BlockRef> = self
            .store
            .get(&reference)
            .map(|block| block.parents().to_vec())
            .unwrap_or_default();
        for parent in parents {
            self.unreferenced.remove(&parent);
        }
        self.unreferenced.insert(reference);
    }

    /// Produces blocks while the previous round holds a quorum (and the
    /// inclusion wait has elapsed). Called by the runner at start-up, after
    /// every state change, and on scheduled wake-ups.
    pub fn maybe_advance(&mut self, now: Time) -> Vec<Action> {
        let mut actions = Vec::new();
        if self.is_offline(now) {
            // Re-check right after the restart time.
            if let Behavior::Offline { until, .. } = self.behavior {
                actions.push(Action::WakeAt(until));
            }
            return actions;
        }
        // Release deliberately-delayed messages that have come due
        // (slow-proposer pacing), and re-arm the wake-up for the rest.
        while self
            .pending_out
            .front()
            .is_some_and(|&(release, _)| release <= now)
        {
            let (_, message) = self.pending_out.pop_front().expect("checked front");
            actions.push(Action::Broadcast(message));
        }
        if let Some(&(release, _)) = self.pending_out.front() {
            actions.push(Action::WakeAt(release));
        }
        loop {
            let next = self.round + 1;
            if self.is_crashed(next) {
                break;
            }
            let quorum = self.setup.committee().quorum_threshold();
            let present = self.store.authorities_at_round(self.round).len();
            if present < quorum {
                self.quorum_since = None;
                break;
            }
            // For certified protocols the own previous block must itself be
            // certified (in store) before extending it.
            if self.round > 0
                && self
                    .store
                    .blocks_in_slot(mahimahi_types::Slot::new(self.round, self.authority))
                    .is_empty()
            {
                break;
            }
            // Post-quorum inclusion wait — skipped once every validator's
            // block is already here (nothing left to wait for).
            if present < self.setup.committee().size() && self.inclusion_wait > 0 {
                let since = *self.quorum_since.get_or_insert(now);
                let ready_at = since + self.inclusion_wait;
                if now < ready_at {
                    actions.push(Action::WakeAt(ready_at));
                    break;
                }
            }
            self.quorum_since = None;
            actions.extend(self.produce(next, now));
            self.round = next;
        }
        actions
    }

    /// Builds, stores, and disseminates the block for `round`.
    fn produce(&mut self, round: Round, now: Time) -> Vec<Action> {
        let committee_size = self.setup.committee().size();
        // Parents: own previous block first, then every block of the
        // previous round, then older unreferenced tips (straggler support).
        let own_previous = self
            .store
            .blocks_in_slot(mahimahi_types::Slot::new(round - 1, self.authority))
            .first()
            .map(|block| block.reference())
            .expect("own chain extends round by round");
        let mut parents = vec![own_previous];
        let mut seen: HashSet<BlockRef> = parents.iter().copied().collect();
        for block in self.store.blocks_at_round(round - 1) {
            let reference = block.reference();
            if seen.insert(reference) {
                parents.push(reference);
            }
        }
        for &reference in &self.unreferenced {
            if reference.round < round - 1 && seen.insert(reference) {
                parents.push(reference);
            }
        }

        // Pull transactions from the client queue.
        let take = self.tx_queue.len().min(self.max_block_transactions);
        let mut submits = Vec::with_capacity(take);
        let mut transactions = Vec::with_capacity(take);
        for _ in 0..take {
            let (id, submitted) = self.tx_queue.pop_front().expect("checked length");
            submits.push(submitted);
            transactions.push(Transaction::new(id.to_le_bytes().to_vec()));
        }

        let build = |tag: Option<u64>| -> Arc<Block> {
            let mut builder = BlockBuilder::new(self.authority, round)
                .parents(parents.clone())
                .transactions(transactions.iter().cloned());
            if let Some(tag) = tag {
                builder = builder.transaction(Transaction::new(tag.to_le_bytes().to_vec()));
            }
            builder
                .build_with(
                    self.setup.keypair(self.authority),
                    self.setup.coin_secret(self.authority),
                )
                .into_arc()
        };

        let mut actions = Vec::new();
        match self.behavior {
            Behavior::Equivocator if !self.certified => {
                // Two variants; own chain continues on variant A. Halves of
                // the committee receive different variants and sort it out
                // through the synchronizer.
                let variant_a = build(Some(1));
                let variant_b = build(Some(2));
                self.own_block_txs
                    .insert(variant_a.reference(), submits.clone());
                self.own_block_txs.insert(variant_b.reference(), submits);
                self.insert_own(variant_a.clone());
                for peer in 0..committee_size {
                    if peer == self.authority.as_usize() {
                        continue;
                    }
                    let variant = if peer < committee_size / 2 {
                        variant_a.clone()
                    } else {
                        variant_b.clone()
                    };
                    actions.push(Action::Send(peer, SimMessage::Block(variant)));
                }
            }
            Behavior::SplitBrainEquivocator { minority } if !self.certified => {
                // Split-brain along the partition boundary: peers below
                // `minority` see variant A, the rest variant B, so each side
                // builds on an internally consistent but globally
                // conflicting chain. Own chain extends this validator's own
                // side of the split.
                let variant_a = build(Some(1));
                let variant_b = build(Some(2));
                self.own_block_txs
                    .insert(variant_a.reference(), submits.clone());
                self.own_block_txs.insert(variant_b.reference(), submits);
                let own_side_a = self.authority.as_usize() < minority;
                self.insert_own(if own_side_a {
                    variant_a.clone()
                } else {
                    variant_b.clone()
                });
                for peer in 0..committee_size {
                    if peer == self.authority.as_usize() {
                        continue;
                    }
                    let variant = if peer < minority {
                        variant_a.clone()
                    } else {
                        variant_b.clone()
                    };
                    actions.push(Action::Send(peer, SimMessage::Block(variant)));
                }
            }
            Behavior::ForkSpammer { forks } if !self.certified => {
                // `k` conflicting variants sprayed round-robin: every peer
                // gets a valid-looking block, but the slot holds `k` forks
                // that the synchronizer and commit rule must reconcile.
                let k = forks.clamp(2, committee_size.max(2));
                let variants: Vec<Arc<Block>> =
                    (0..k).map(|fork| build(Some(fork as u64 + 1))).collect();
                for variant in &variants {
                    self.own_block_txs
                        .insert(variant.reference(), submits.clone());
                }
                self.insert_own(variants[0].clone());
                for peer in 0..committee_size {
                    if peer == self.authority.as_usize() {
                        continue;
                    }
                    actions.push(Action::Send(
                        peer,
                        SimMessage::Block(variants[peer % k].clone()),
                    ));
                }
            }
            Behavior::WithholdingLeader if !self.certified => {
                let block = build(None);
                self.own_block_txs.insert(block.reference(), submits);
                self.insert_own(block.clone());
                if self.is_elected_leader(round) {
                    // Elected: disclose to fewer than f + 1 peers so the
                    // slot can never gather a certificate pattern.
                    for peer in self.withholding_targets() {
                        actions.push(Action::Send(peer, SimMessage::Block(block.clone())));
                    }
                } else {
                    // Off-slot rounds look perfectly honest.
                    actions.push(Action::Broadcast(SimMessage::Block(block)));
                }
            }
            Behavior::SlowProposer { delay } if !self.certified => {
                // Built (and locally inserted) on time, released late.
                let block = build(None);
                self.own_block_txs.insert(block.reference(), submits);
                self.insert_own(block.clone());
                let release = now + delay;
                self.pending_out
                    .push_back((release, SimMessage::Block(block)));
                actions.push(Action::WakeAt(release));
            }
            Behavior::Mute => {
                let block = build(None);
                self.own_block_txs.insert(block.reference(), submits);
                self.insert_own(block);
                // Never sent: the slot looks empty to everyone else.
            }
            Behavior::SlowProposer { delay } => {
                // Certified pipeline, paced late: the proposal itself is
                // held back, delaying the whole ack/certificate exchange.
                let block = build(None);
                let reference = block.reference();
                self.own_block_txs.insert(reference, submits);
                self.pending_proposals.insert(reference, block.clone());
                self.ack_votes
                    .entry(reference)
                    .or_default()
                    .insert(self.authority);
                let release = now + delay;
                self.pending_out
                    .push_back((release, SimMessage::Proposal(block)));
                actions.push(Action::WakeAt(release));
            }
            _ if self.certified => {
                let block = build(None);
                let reference = block.reference();
                self.own_block_txs.insert(reference, submits);
                // Certification first: proposal → acks → certificate.
                self.pending_proposals.insert(reference, block.clone());
                self.ack_votes
                    .entry(reference)
                    .or_default()
                    .insert(self.authority);
                actions.push(Action::Broadcast(SimMessage::Proposal(block)));
            }
            _ => {
                let block = build(None);
                self.own_block_txs.insert(block.reference(), submits);
                self.insert_own(block.clone());
                actions.push(Action::Broadcast(SimMessage::Block(block)));
            }
        }
        // Own inserts can complete a buffered conflicting pair through the
        // waiter chain; collect whatever the store emitted.
        self.harvest_evidence(&mut actions);
        actions
    }

    fn insert_own(&mut self, block: Arc<Block>) {
        if let Ok(InsertResult::Inserted(admitted)) = self.store.insert(block) {
            for reference in admitted {
                self.note_admitted(reference);
            }
        }
    }

    /// Runs the commit rule and books newly committed transactions.
    pub fn try_commit(&mut self, now: Time) -> Vec<Action> {
        let mut actions = Vec::new();
        for decision in self.sequencer.try_commit(&self.store) {
            match decision {
                CommitDecision::Skip(..) => {
                    self.skipped_slots += 1;
                    self.commit_log.push(None);
                }
                CommitDecision::Commit(sub_dag) => {
                    self.commit_log.push(Some(sub_dag.leader));
                    self.committed_slots += 1;
                    self.sequenced_blocks += sub_dag.blocks.len() as u64;
                    let mut submits = Vec::new();
                    for block in &sub_dag.blocks {
                        self.committed_transactions += block.transactions().len() as u64;
                        if block.author() == self.authority {
                            if let Some(mine) = self.own_block_txs.remove(&block.reference()) {
                                submits.extend(mine);
                            }
                        }
                    }
                    if !submits.is_empty() {
                        actions.push(Action::TxsCommitted(submits));
                    }
                }
            }
        }
        let _ = now;
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolChoice;

    fn validator(authority: u32, behavior: Behavior, certified: bool) -> SimValidator {
        let setup = TestCommittee::new(4, 7);
        let protocol = if certified {
            ProtocolChoice::Tusk
        } else {
            ProtocolChoice::MahiMahi5 { leaders: 2 }
        };
        let committer = protocol.committer(setup.committee().clone());
        SimValidator::new(
            AuthorityIndex(authority),
            setup,
            committer,
            behavior,
            certified,
            100,
            0, // no inclusion wait: unit tests drive rounds explicitly
            protocol.leader_schedule(),
        )
    }

    #[test]
    fn produces_round_one_at_startup() {
        let mut v = validator(0, Behavior::Honest, false);
        let actions = v.maybe_advance(0);
        assert_eq!(v.round(), 1);
        assert!(
            matches!(&actions[..], [Action::Broadcast(SimMessage::Block(b))]
            if b.round() == 1)
        );
    }

    #[test]
    fn crashed_validator_does_nothing() {
        let mut v = validator(0, Behavior::Crashed { from_round: 0 }, false);
        assert!(v.maybe_advance(0).is_empty());
        assert_eq!(v.round(), 0);
        v.submit_transactions([(1, 0)]);
        assert_eq!(v.queued_transactions(), 0);
    }

    #[test]
    fn advances_on_peer_blocks() {
        // Four validators exchange round-1 blocks; each should then reach
        // round 2.
        let mut validators: Vec<SimValidator> = (0..4)
            .map(|a| validator(a, Behavior::Honest, false))
            .collect();
        let mut round_one = Vec::new();
        for v in validators.iter_mut() {
            for action in v.maybe_advance(0) {
                if let Action::Broadcast(SimMessage::Block(block)) = action {
                    round_one.push((v.authority().as_usize(), block));
                }
            }
        }
        assert_eq!(round_one.len(), 4);
        let (sender, block) = round_one[1].clone();
        let mut target = validators.remove(0);
        // Deliver three peer blocks to validator 0: round 1 quorum complete.
        target.on_message(1000, sender, SimMessage::Block(block));
        assert_eq!(target.round(), 1, "needs full quorum at round 1");
        for (sender, block) in round_one.iter().skip(2) {
            target.on_message(1000, *sender, SimMessage::Block(block.clone()));
        }
        assert_eq!(target.round(), 2);
        assert_eq!(target.store().blocks_at_round(1).len(), 4);
    }

    #[test]
    fn transactions_flow_into_blocks() {
        let mut v = validator(2, Behavior::Honest, false);
        v.submit_transactions([(10, 5), (11, 6)]);
        let actions = v.maybe_advance(10);
        let Action::Broadcast(SimMessage::Block(block)) = &actions[0] else {
            panic!("expected block broadcast");
        };
        assert_eq!(block.transactions().len(), 2);
        assert_eq!(v.queued_transactions(), 0);
    }

    #[test]
    fn block_capacity_is_respected() {
        let mut v = validator(2, Behavior::Honest, false);
        v.submit_transactions((0..500u64).map(|i| (i, 0)));
        let actions = v.maybe_advance(10);
        let Action::Broadcast(SimMessage::Block(block)) = &actions[0] else {
            panic!("expected block broadcast");
        };
        assert_eq!(block.transactions().len(), 100);
        assert_eq!(v.queued_transactions(), 400);
    }

    #[test]
    fn certified_validator_waits_for_certificate() {
        let mut v = validator(0, Behavior::Honest, true);
        let actions = v.maybe_advance(0);
        assert!(matches!(
            &actions[..],
            [Action::Broadcast(SimMessage::Proposal(_))]
        ));
        // Not in the DAG yet: the round counter advanced but the store has
        // no round-1 block until the certificate forms.
        assert_eq!(v.store().blocks_at_round(1).len(), 0);
        // Acks from two peers complete the quorum (own ack counts).
        let reference = match &actions[0] {
            Action::Broadcast(SimMessage::Proposal(block)) => block.reference(),
            _ => unreachable!(),
        };
        let more = v.on_message(
            10,
            1,
            SimMessage::Ack {
                reference,
                voter: AuthorityIndex(1),
            },
        );
        assert!(more.is_empty());
        let more = v.on_message(
            20,
            2,
            SimMessage::Ack {
                reference,
                voter: AuthorityIndex(2),
            },
        );
        assert!(more
            .iter()
            .any(|a| matches!(a, Action::Broadcast(SimMessage::Certificate { .. }))));
        assert_eq!(v.store().blocks_at_round(1).len(), 1);
    }

    #[test]
    fn missing_ancestry_triggers_synchronizer() {
        let setup = TestCommittee::new(4, 7);
        let mut dag = mahimahi_dag::DagBuilder::new(setup);
        dag.add_full_round();
        let r2 = dag.add_full_round();
        let block = dag.store().get(&r2[1]).unwrap().clone();

        let mut v = validator(0, Behavior::Honest, false);
        // Deliver a round-2 block whose round-1 parents are unknown (other
        // than v's own? v produced its own round 1 via a different setup —
        // all four parents are unknown here).
        let actions = v.on_message(0, 1, SimMessage::Block(block));
        assert!(actions.iter().any(|a| matches!(a,
            Action::Send(1, SimMessage::Request(refs)) if !refs.is_empty())));
    }

    #[test]
    fn request_answered_with_blocks() {
        let mut v = validator(0, Behavior::Honest, false);
        v.maybe_advance(0);
        let own = v
            .store()
            .blocks_at_round(1)
            .first()
            .map(|b| b.reference())
            .unwrap();
        let actions = v.on_message(5, 3, SimMessage::Request(vec![own]));
        assert!(
            matches!(&actions[..], [Action::Send(3, SimMessage::Response(blocks))]
            if blocks.len() == 1)
        );
    }

    #[test]
    fn equivocator_sends_different_variants() {
        let mut v = validator(1, Behavior::Equivocator, false);
        let actions = v.maybe_advance(0);
        let mut sent: HashMap<usize, BlockRef> = HashMap::new();
        for action in &actions {
            if let Action::Send(to, SimMessage::Block(block)) = action {
                sent.insert(*to, block.reference());
            }
        }
        assert_eq!(sent.len(), 3);
        // Peers in different halves got different digests.
        assert_ne!(sent[&0], sent[&3]);
    }

    #[test]
    fn mute_validator_stays_silent() {
        let mut v = validator(1, Behavior::Mute, false);
        let actions = v.maybe_advance(0);
        assert!(actions.is_empty());
        // But its own chain advances locally.
        assert_eq!(v.round(), 1);
        assert_eq!(v.store().blocks_at_round(1).len(), 1);
    }

    #[test]
    fn split_brain_routes_variants_along_the_partition_boundary() {
        // minority = 2: peers {0, 1} get variant A, {2, 3} \ self variant B.
        let mut v = validator(3, Behavior::SplitBrainEquivocator { minority: 2 }, false);
        let actions = v.maybe_advance(0);
        let mut sent: HashMap<usize, BlockRef> = HashMap::new();
        for action in &actions {
            if let Action::Send(to, SimMessage::Block(block)) = action {
                sent.insert(*to, block.reference());
            }
        }
        assert_eq!(sent.len(), 3);
        assert_eq!(sent[&0], sent[&1], "minority side must see one variant");
        assert_ne!(sent[&0], sent[&2], "sides must see conflicting variants");
        // Own chain extends the attacker's own (majority) side.
        let own = v.store().blocks_at_round(1)[0].reference();
        assert_eq!(own, sent[&2]);
    }

    #[test]
    fn fork_spammer_sprays_distinct_variants() {
        let mut v = validator(0, Behavior::ForkSpammer { forks: 3 }, false);
        let actions = v.maybe_advance(0);
        let mut digests = HashSet::new();
        let mut receivers = HashSet::new();
        for action in &actions {
            if let Action::Send(to, SimMessage::Block(block)) = action {
                receivers.insert(*to);
                digests.insert(block.reference());
            }
        }
        assert_eq!(receivers.len(), 3, "every peer receives a block");
        assert!(
            digests.len() >= 2,
            "at least two conflicting forks in flight"
        );
    }

    #[test]
    fn withholding_leader_is_honest_off_slot_and_selective_on_slot() {
        // Probe each authority: whoever the deterministic coin elects for
        // round 1 must withhold (≤ f sends), everyone else broadcasts.
        let mut saw_withholding = false;
        let mut saw_broadcast = false;
        for authority in 0..4u32 {
            let mut v = validator(authority, Behavior::WithholdingLeader, false);
            let elected = v.is_elected_leader(1);
            let actions = v.maybe_advance(0);
            let sends = actions
                .iter()
                .filter(|a| matches!(a, Action::Send(_, SimMessage::Block(_))))
                .count();
            let broadcasts = actions
                .iter()
                .filter(|a| matches!(a, Action::Broadcast(SimMessage::Block(_))))
                .count();
            if elected {
                // f = 1 at n = 4: strictly fewer than f + 1 = 2 recipients.
                assert_eq!((sends, broadcasts), (1, 0), "authority {authority}");
                saw_withholding = true;
            } else {
                assert_eq!((sends, broadcasts), (0, 1), "authority {authority}");
                saw_broadcast = true;
            }
        }
        // MahiMahi5 with 2 leaders per round: both cases must occur.
        assert!(saw_withholding && saw_broadcast);
    }

    #[test]
    fn slow_proposer_releases_blocks_late() {
        let mut v = validator(2, Behavior::SlowProposer { delay: 500 }, false);
        let actions = v.maybe_advance(100);
        // Produced and stored locally, but only a wake-up goes out.
        assert_eq!(v.round(), 1);
        assert_eq!(v.store().blocks_at_round(1).len(), 1);
        assert!(actions
            .iter()
            .all(|a| !matches!(a, Action::Broadcast(_) | Action::Send(..))));
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::WakeAt(at) if *at == 600)));
        // At the release time the block finally broadcasts.
        let released = v.maybe_advance(600);
        assert!(released
            .iter()
            .any(|a| matches!(a, Action::Broadcast(SimMessage::Block(b)) if b.round() == 1)));
    }

    #[test]
    fn elections_follow_the_schedule() {
        // Cordial Miners proposes only on rounds 1, 6, 11, …: off-schedule
        // rounds never elect anyone.
        let setup = TestCommittee::new(4, 7);
        let committer = ProtocolChoice::CordialMiners.committer(setup.committee().clone());
        let mut v = SimValidator::new(
            AuthorityIndex(0),
            setup,
            committer,
            Behavior::WithholdingLeader,
            false,
            100,
            0,
            ProtocolChoice::CordialMiners.leader_schedule(),
        );
        assert!(!v.is_elected_leader(2));
        assert!(!v.is_elected_leader(5));
        // Propose rounds elect exactly one leader among the committee.
        let elected = (0..4)
            .map(|a| validator(a, Behavior::WithholdingLeader, false))
            .filter_map(|mut v| v.is_elected_leader(6).then_some(()))
            .count();
        assert_eq!(elected, 2, "MahiMahi5 with 2 leaders elects 2 per round");
    }
}
