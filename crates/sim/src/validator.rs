//! The simulated validator: a thin shell over the shared sans-I/O engine.
//!
//! A [`SimValidator`] is one protocol participant. All consensus logic —
//! DAG admission, synchronization, round pacing, block production, the
//! commit rule, evidence handling — lives in the shared
//! [`ValidatorEngine`] (`mahimahi-core`), the same state machine the TCP
//! node drives. This shell only:
//!
//! - models the *process*: crashed and offline windows drop inputs before
//!   they reach the engine (a down process loses in-flight messages; the
//!   synchronizer repairs the gaps after restart);
//! - selects the [`ProposerStrategy`] matching the configured
//!   [`Behavior`] (Byzantine attack strategies live in
//!   [`crate::strategy`]);
//! - maps engine [`Output`]s onto runner [`Action`]s (virtual network
//!   sends, wake-ups, latency bookkeeping).
//!
//! [`ValidatorEngine`]: mahimahi_core::ValidatorEngine
//! [`ProposerStrategy`]: mahimahi_core::ProposerStrategy

use mahimahi_core::{
    engine::{EngineConfig, Input},
    EvidencePool, IngressConfig, IngressReport, MempoolConfig, Output, ProtocolCommitter,
    TxIntegrityReport, ValidatorEngine,
};
use mahimahi_dag::BlockStore;
use mahimahi_net::time::Time;
use mahimahi_types::{
    AuthorityIndex, BlockRef, Checkpoint, Round, StateRoot, TestCommittee, Transaction,
};

use crate::config::{Behavior, LeaderSchedule};
use crate::message::SimMessage;
use crate::strategy::strategy_for;

/// An effect a validator asks the runner to carry out.
#[derive(Debug)]
pub enum Action {
    /// Send `message` to every other validator.
    Broadcast(SimMessage),
    /// Send `message` to one validator.
    Send(usize, SimMessage),
    /// Transactions authored by this validator just committed; each entry
    /// is the client submission time.
    TxsCommitted(Vec<Time>),
    /// Call `maybe_advance` again no earlier than the given time (a
    /// pacing wait is pending).
    WakeAt(Time),
}

/// One simulated protocol participant.
pub struct SimValidator {
    behavior: Behavior,
    engine: ValidatorEngine,
    /// Every signed checkpoint this validator produced, in position order
    /// (the `state-root-agreement` oracle compares them across validators).
    checkpoints: Vec<Checkpoint>,
}

impl SimValidator {
    /// Creates the validator for `authority`.
    #[allow(clippy::too_many_arguments)] // one call site, the runner, builds this from SimConfig
    pub fn new(
        authority: AuthorityIndex,
        setup: TestCommittee,
        committer: Box<dyn ProtocolCommitter>,
        behavior: Behavior,
        certified: bool,
        mempool: MempoolConfig,
        ingress: IngressConfig,
        track_tx_integrity: bool,
        inclusion_wait: Time,
        leader_schedule: LeaderSchedule,
    ) -> Self {
        let strategy = strategy_for(behavior, certified, authority, &setup, leader_schedule);
        let mut config = EngineConfig::new(authority, setup);
        config.certified = certified;
        config.mempool = mempool;
        config.ingress = ingress;
        config.track_tx_integrity = track_tx_integrity;
        config.inclusion_wait = inclusion_wait;
        if let Behavior::Crashed { from_round } = behavior {
            config.halt_from_round = Some(from_round);
        }
        SimValidator {
            behavior,
            engine: ValidatorEngine::new(config, committer, strategy),
            checkpoints: Vec::new(),
        }
    }

    /// The committed leader sequence so far (`None` entries are skipped
    /// slots). Any two honest validators' logs must be prefix-consistent —
    /// the safety property of Lemmas 5–7.
    pub fn commit_log(&self) -> &[Option<BlockRef>] {
        self.engine.commit_log()
    }

    /// The authority this validator runs as.
    pub fn authority(&self) -> AuthorityIndex {
        self.engine.authority()
    }

    /// The local DAG.
    pub fn store(&self) -> &BlockStore {
        self.engine.store()
    }

    /// The shared engine this shell drives (inspection).
    pub fn engine(&self) -> &ValidatorEngine {
        &self.engine
    }

    /// Attaches a record-only telemetry sink to the engine (see
    /// [`ValidatorEngine::set_telemetry`]).
    pub fn set_telemetry(&mut self, sink: std::sync::Arc<dyn mahimahi_core::TelemetrySink>) {
        self.engine.set_telemetry(sink);
    }

    /// The evidence pool (verified convictions, slashing hooks).
    pub fn evidence(&self) -> &EvidencePool {
        self.engine.evidence()
    }

    /// Mutable evidence pool access (for registering slashing hooks).
    pub fn evidence_mut(&mut self) -> &mut EvidencePool {
        self.engine.evidence_mut()
    }

    /// The authorities this validator has convicted of equivocation, in
    /// index order. Honest validators converge on this set (the
    /// `evidence-attribution` oracle of `mahimahi-scenarios` checks it).
    pub fn convicted(&self) -> Vec<AuthorityIndex> {
        self.engine.convicted()
    }

    /// Last produced round.
    pub fn round(&self) -> Round {
        self.engine.round()
    }

    /// Transactions waiting for inclusion.
    pub fn queued_transactions(&self) -> usize {
        self.engine.queued_transactions()
    }

    /// Committed leader slots at this validator.
    pub(crate) fn committed_slots(&self) -> u64 {
        self.engine.committed_slots()
    }

    /// Skipped leader slots at this validator.
    pub(crate) fn skipped_slots(&self) -> u64 {
        self.engine.skipped_slots()
    }

    /// Blocks linearized into the total order at this validator.
    pub(crate) fn sequenced_blocks(&self) -> u64 {
        self.engine.sequenced_blocks()
    }

    /// Transactions committed (across all authors) at this validator.
    pub(crate) fn committed_transactions(&self) -> u64 {
        self.engine.committed_transactions()
    }

    fn is_crashed(&self, round: Round) -> bool {
        matches!(self.behavior, Behavior::Crashed { from_round } if round >= from_round)
    }

    fn is_offline(&self, now: Time) -> bool {
        matches!(self.behavior, Behavior::Offline { from, until }
            if (from..until).contains(&now))
    }

    /// Enqueues client transactions (id, submission time) through the
    /// bounded mempool. Rejections (duplicates, a full pool) surface as
    /// `Output::TxRejected` and are absorbed here — open-loop clients do
    /// not retry; the rejection counters stay visible through
    /// [`Self::tx_integrity`].
    pub fn submit_transactions(&mut self, txs: impl IntoIterator<Item = (u64, Time)>) {
        if self.is_crashed(self.engine.round()) {
            return;
        }
        for (id, submitted) in txs {
            // Enqueue-only input: inclusion happens at the next
            // production, exactly as the runner's follow-up
            // `maybe_advance` expects.
            let outputs = self.engine.handle(Input::TxSubmitted {
                transaction: Transaction::new(id.to_le_bytes().to_vec()),
                tag: submitted,
            });
            // An accepted submission may also arm the forward timer; the
            // wake-up is safe to drop here because the caller's follow-up
            // `maybe_advance` re-arms it through the engine's timer path.
            debug_assert!(outputs
                .iter()
                .all(|output| matches!(output, Output::TxRejected { .. } | Output::WakeAt(_))));
        }
    }

    /// Submits a client batch through the shared wire vocabulary
    /// ([`SimMessage::TxBatch`]) — the same ingestion path the TCP node's
    /// client listener and the loopback cluster use.
    pub fn submit_batch(
        &mut self,
        now: Time,
        from: usize,
        transactions: Vec<Transaction>,
    ) -> Vec<Action> {
        self.on_message(now, from, SimMessage::TxBatch(transactions))
    }

    /// The transaction-pipeline accounting at this validator (mempool
    /// occupancy, rejections, conservation, duplicate commits).
    pub fn tx_integrity(&self) -> TxIntegrityReport {
        self.engine.tx_integrity()
    }

    /// The ingress ledger at this validator (receipts, commit notices,
    /// forwarding, rate limiting) — what the `receipt-integrity` scenario
    /// oracle checks.
    pub fn ingress_report(&self) -> IngressReport {
        self.engine.ingress_report()
    }

    /// The execution-state root after every sub-DAG applied so far.
    pub fn state_root(&self) -> StateRoot {
        self.engine.state_root()
    }

    /// Every checkpoint this validator signed, in position order.
    pub fn checkpoints(&self) -> &[Checkpoint] {
        &self.checkpoints
    }

    /// Handles a delivered message, returning follow-up actions.
    pub fn on_message(&mut self, now: Time, from: usize, message: SimMessage) -> Vec<Action> {
        if self.is_crashed(self.engine.round() + 1) {
            return Vec::new();
        }
        if self.is_offline(now) {
            // The process is down: in-flight messages addressed to it are
            // lost; the synchronizer repairs the gaps after restart.
            return Vec::new();
        }
        let mut actions = Vec::new();
        let outputs = self.engine.handle(Input::TimerFired { now });
        self.apply(outputs, &mut actions);
        let outputs = self.engine.handle(Input::from_envelope(from, message));
        self.apply(outputs, &mut actions);
        actions
    }

    /// Advances the engine clock: produces blocks when pacing allows,
    /// releases paced messages, runs the commit rule. Called by the runner
    /// at start-up, after every state change, and on scheduled wake-ups.
    pub fn maybe_advance(&mut self, now: Time) -> Vec<Action> {
        let mut actions = Vec::new();
        if self.is_offline(now) {
            // Re-check right after the restart time.
            if let Behavior::Offline { until, .. } = self.behavior {
                actions.push(Action::WakeAt(until));
            }
            return actions;
        }
        let outputs = self.engine.handle(Input::TimerFired { now });
        self.apply(outputs, &mut actions);
        actions
    }

    /// Maps engine outputs onto runner actions. Persistence, commit, and
    /// backpressure notifications have no simulator-side effect (metrics
    /// read the engine's counters directly); checkpoints are recorded for
    /// the `state-root-agreement` oracle; everything else forwards
    /// one-to-one.
    fn apply(&mut self, outputs: Vec<Output>, actions: &mut Vec<Action>) {
        for output in outputs {
            match output {
                Output::Broadcast(envelope) => actions.push(Action::Broadcast(envelope)),
                Output::SendTo(peer, envelope) => actions.push(Action::Send(peer, envelope)),
                Output::TxsCommitted(submits) => actions.push(Action::TxsCommitted(submits)),
                Output::WakeAt(time) => actions.push(Action::WakeAt(time)),
                Output::CheckpointProduced(checkpoint) => self.checkpoints.push(checkpoint),
                Output::TxReceipt { peer, receipt } => {
                    actions.push(Action::Send(peer, SimMessage::TxReceipt(receipt)))
                }
                Output::Committed(_)
                | Output::Persist(_)
                | Output::Convicted(_)
                | Output::TxRejected { .. } => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolChoice;
    use mahimahi_types::Block;
    use std::collections::{HashMap, HashSet};
    use std::sync::Arc;

    /// Election probe mirroring the strategies' internal oracle.
    fn elected(schedule: crate::config::LeaderSchedule, authority: u32, round: Round) -> bool {
        crate::strategy::Elector::new(
            AuthorityIndex(authority),
            TestCommittee::new(4, 7),
            schedule,
        )
        .is_elected_leader(round)
    }

    fn validator(authority: u32, behavior: Behavior, certified: bool) -> SimValidator {
        let setup = TestCommittee::new(4, 7);
        let protocol = if certified {
            ProtocolChoice::Tusk
        } else {
            ProtocolChoice::MahiMahi5 { leaders: 2 }
        };
        let committer = protocol.committer(setup.committee().clone());
        SimValidator::new(
            AuthorityIndex(authority),
            setup,
            committer,
            behavior,
            certified,
            MempoolConfig::test(10_000, 100),
            IngressConfig::default(),
            true,
            0, // no inclusion wait: unit tests drive rounds explicitly
            protocol.leader_schedule(),
        )
    }

    /// Broadcast block actions (the production path most tests inspect).
    fn broadcast_block(actions: &[Action]) -> Option<Arc<Block>> {
        actions.iter().find_map(|action| match action {
            Action::Broadcast(SimMessage::Block(block)) => Some(block.clone()),
            _ => None,
        })
    }

    #[test]
    fn produces_round_one_at_startup() {
        let mut v = validator(0, Behavior::Honest, false);
        let actions = v.maybe_advance(0);
        assert_eq!(v.round(), 1);
        assert_eq!(actions.len(), 1, "one broadcast, nothing else");
        assert!(broadcast_block(&actions).is_some_and(|b| b.round() == 1));
    }

    #[test]
    fn crashed_validator_does_nothing() {
        let mut v = validator(0, Behavior::Crashed { from_round: 0 }, false);
        assert!(v.maybe_advance(0).is_empty());
        assert_eq!(v.round(), 0);
        v.submit_transactions([(1, 0)]);
        assert_eq!(v.queued_transactions(), 0);
    }

    #[test]
    fn advances_on_peer_blocks() {
        // Four validators exchange round-1 blocks; each should then reach
        // round 2.
        let mut validators: Vec<SimValidator> = (0..4)
            .map(|a| validator(a, Behavior::Honest, false))
            .collect();
        let mut round_one = Vec::new();
        for v in validators.iter_mut() {
            let actions = v.maybe_advance(0);
            if let Some(block) = broadcast_block(&actions) {
                round_one.push((v.authority().as_usize(), block));
            }
        }
        assert_eq!(round_one.len(), 4);
        let (sender, block) = round_one[1].clone();
        let mut target = validators.remove(0);
        // Deliver three peer blocks to validator 0: round 1 quorum complete.
        target.on_message(1000, sender, SimMessage::Block(block));
        assert_eq!(target.round(), 1, "needs full quorum at round 1");
        for (sender, block) in round_one.iter().skip(2) {
            target.on_message(1000, *sender, SimMessage::Block(block.clone()));
        }
        assert_eq!(target.round(), 2);
        assert_eq!(target.store().blocks_at_round(1).len(), 4);
    }

    #[test]
    fn transactions_flow_into_blocks() {
        let mut v = validator(2, Behavior::Honest, false);
        v.submit_transactions([(10, 5), (11, 6)]);
        let actions = v.maybe_advance(10);
        let block = broadcast_block(&actions).expect("expected block broadcast");
        assert_eq!(block.transactions().len(), 2);
        assert_eq!(v.queued_transactions(), 0);
    }

    #[test]
    fn block_capacity_is_respected() {
        let mut v = validator(2, Behavior::Honest, false);
        v.submit_transactions((0..500u64).map(|i| (i, 0)));
        let actions = v.maybe_advance(10);
        let block = broadcast_block(&actions).expect("expected block broadcast");
        assert_eq!(block.transactions().len(), 100);
        assert_eq!(v.queued_transactions(), 400);
    }

    #[test]
    fn wire_batches_share_the_mempool_with_local_submissions() {
        let mut v = validator(1, Behavior::Honest, false);
        // A batch through the wire vocabulary lands in the same pool…
        let actions = v.submit_batch(
            5,
            0,
            vec![Transaction::benchmark(1), Transaction::benchmark(2)],
        );
        assert_eq!(v.queued_transactions(), 2);
        // …and the same digests submitted locally afterwards deduplicate.
        v.submit_transactions([(0, 0)]);
        assert_eq!(v.queued_transactions(), 3);
        let integrity = v.tx_integrity();
        assert_eq!(integrity.accepted, 3);
        let _ = actions;
        let again = v.submit_batch(6, 2, vec![Transaction::benchmark(2)]);
        assert_eq!(v.queued_transactions(), 3, "duplicate digest rejected");
        assert_eq!(v.tx_integrity().rejected_duplicate, 1);
        assert!(again
            .iter()
            .all(|action| !matches!(action, Action::Broadcast(_))));
    }

    #[test]
    fn certified_validator_waits_for_certificate() {
        let mut v = validator(0, Behavior::Honest, true);
        let actions = v.maybe_advance(0);
        let reference = match &actions[..] {
            [Action::Broadcast(SimMessage::Proposal(block))] => block.reference(),
            other => panic!("expected proposal broadcast, got {other:?}"),
        };
        // Not in the DAG yet: the round counter advanced but the store has
        // no round-1 block until the certificate forms.
        assert_eq!(v.store().blocks_at_round(1).len(), 0);
        // Acks from two peers complete the quorum (own ack counts).
        let more = v.on_message(
            10,
            1,
            SimMessage::Ack {
                reference,
                voter: AuthorityIndex(1),
            },
        );
        assert!(more.is_empty());
        let more = v.on_message(
            20,
            2,
            SimMessage::Ack {
                reference,
                voter: AuthorityIndex(2),
            },
        );
        assert!(more
            .iter()
            .any(|a| matches!(a, Action::Broadcast(SimMessage::Certificate { .. }))));
        assert_eq!(v.store().blocks_at_round(1).len(), 1);
    }

    #[test]
    fn missing_ancestry_triggers_synchronizer() {
        let setup = TestCommittee::new(4, 7);
        let mut dag = mahimahi_dag::DagBuilder::new(setup);
        dag.add_full_round();
        let r2 = dag.add_full_round();
        let block = dag.store().get(&r2[1]).unwrap().clone();

        let mut v = validator(0, Behavior::Honest, false);
        // Deliver a round-2 block whose round-1 parents are unknown.
        let actions = v.on_message(0, 1, SimMessage::Block(block));
        assert!(actions.iter().any(|a| matches!(a,
            Action::Send(1, SimMessage::Request(refs)) if !refs.is_empty())));
    }

    #[test]
    fn request_answered_with_blocks() {
        let mut v = validator(0, Behavior::Honest, false);
        v.maybe_advance(0);
        let own = v
            .store()
            .blocks_at_round(1)
            .first()
            .map(|b| b.reference())
            .unwrap();
        let actions = v.on_message(5, 3, SimMessage::Request(vec![own]));
        assert!(
            matches!(&actions[..], [Action::Send(3, SimMessage::Response(blocks))]
            if blocks.len() == 1)
        );
    }

    #[test]
    fn equivocator_sends_different_variants() {
        let mut v = validator(1, Behavior::Equivocator, false);
        let actions = v.maybe_advance(0);
        let mut sent: HashMap<usize, BlockRef> = HashMap::new();
        for action in &actions {
            if let Action::Send(to, SimMessage::Block(block)) = action {
                sent.insert(*to, block.reference());
            }
        }
        assert_eq!(sent.len(), 3);
        // Peers in different halves got different digests.
        assert_ne!(sent[&0], sent[&3]);
    }

    #[test]
    fn mute_validator_stays_silent() {
        let mut v = validator(1, Behavior::Mute, false);
        let actions = v.maybe_advance(0);
        assert!(actions.is_empty());
        // But its own chain advances locally.
        assert_eq!(v.round(), 1);
        assert_eq!(v.store().blocks_at_round(1).len(), 1);
    }

    #[test]
    fn split_brain_routes_variants_along_the_partition_boundary() {
        // minority = 2: peers {0, 1} get variant A, {2, 3} \ self variant B.
        let mut v = validator(3, Behavior::SplitBrainEquivocator { minority: 2 }, false);
        let actions = v.maybe_advance(0);
        let mut sent: HashMap<usize, BlockRef> = HashMap::new();
        for action in &actions {
            if let Action::Send(to, SimMessage::Block(block)) = action {
                sent.insert(*to, block.reference());
            }
        }
        assert_eq!(sent.len(), 3);
        assert_eq!(sent[&0], sent[&1], "minority side must see one variant");
        assert_ne!(sent[&0], sent[&2], "sides must see conflicting variants");
        // Own chain extends the attacker's own (majority) side.
        let own = v.store().blocks_at_round(1)[0].reference();
        assert_eq!(own, sent[&2]);
    }

    #[test]
    fn fork_spammer_sprays_distinct_variants() {
        let mut v = validator(0, Behavior::ForkSpammer { forks: 3 }, false);
        let actions = v.maybe_advance(0);
        let mut digests = HashSet::new();
        let mut receivers = HashSet::new();
        for action in &actions {
            if let Action::Send(to, SimMessage::Block(block)) = action {
                receivers.insert(*to);
                digests.insert(block.reference());
            }
        }
        assert_eq!(receivers.len(), 3, "every peer receives a block");
        assert!(
            digests.len() >= 2,
            "at least two conflicting forks in flight"
        );
    }

    #[test]
    fn adaptive_attacker_withholds_on_slot_and_equivocates_off_slot() {
        // Round 1 with an empty round-0 view: the laggard split is
        // degenerate, so victims fall back to the past-quorum peers. The
        // observable contract: on a leader slot the block reaches exactly
        // f peers and only one variant exists; off slot, two conflicting
        // variants go out and the victims get the minority one.
        let schedule = ProtocolChoice::MahiMahi5 { leaders: 2 }.leader_schedule();
        for authority in 0..4u32 {
            let mut v = validator(authority, Behavior::Adaptive, false);
            let actions = v.maybe_advance(0);
            let mut sent: HashMap<usize, BlockRef> = HashMap::new();
            for action in &actions {
                if let Action::Send(to, SimMessage::Block(block)) = action {
                    sent.insert(*to, block.reference());
                }
            }
            let variants: HashSet<BlockRef> = sent.values().copied().collect();
            if elected(schedule, authority, 1) {
                // f = 1 at n = 4: one recipient, one variant, no broadcast.
                assert_eq!(sent.len(), 1, "authority {authority}");
                assert_eq!(variants.len(), 1, "authority {authority}");
            } else {
                assert_eq!(sent.len(), 3, "authority {authority}");
                assert_eq!(variants.len(), 2, "authority {authority} equivocates");
            }
            assert!(actions
                .iter()
                .all(|a| !matches!(a, Action::Broadcast(SimMessage::Block(_)))));
        }
    }

    #[test]
    fn withholding_leader_is_honest_off_slot_and_selective_on_slot() {
        // Probe each authority: whoever the deterministic coin elects for
        // round 1 must withhold (≤ f sends), everyone else broadcasts.
        let mut saw_withholding = false;
        let mut saw_broadcast = false;
        let schedule = ProtocolChoice::MahiMahi5 { leaders: 2 }.leader_schedule();
        for authority in 0..4u32 {
            let mut v = validator(authority, Behavior::WithholdingLeader, false);
            let elected = elected(schedule, authority, 1);
            let actions = v.maybe_advance(0);
            let sends = actions
                .iter()
                .filter(|a| matches!(a, Action::Send(_, SimMessage::Block(_))))
                .count();
            let broadcasts = actions
                .iter()
                .filter(|a| matches!(a, Action::Broadcast(SimMessage::Block(_))))
                .count();
            if elected {
                // f = 1 at n = 4: strictly fewer than f + 1 = 2 recipients.
                assert_eq!((sends, broadcasts), (1, 0), "authority {authority}");
                saw_withholding = true;
            } else {
                assert_eq!((sends, broadcasts), (0, 1), "authority {authority}");
                saw_broadcast = true;
            }
        }
        // MahiMahi5 with 2 leaders per round: both cases must occur.
        assert!(saw_withholding && saw_broadcast);
    }

    #[test]
    fn slow_proposer_releases_blocks_late() {
        let mut v = validator(2, Behavior::SlowProposer { delay: 500 }, false);
        let actions = v.maybe_advance(100);
        // Produced and stored locally, but only a wake-up goes out.
        assert_eq!(v.round(), 1);
        assert_eq!(v.store().blocks_at_round(1).len(), 1);
        assert!(actions
            .iter()
            .all(|a| !matches!(a, Action::Broadcast(_) | Action::Send(..))));
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::WakeAt(at) if *at == 600)));
        // At the release time the block finally broadcasts.
        let released = v.maybe_advance(600);
        assert!(released
            .iter()
            .any(|a| matches!(a, Action::Broadcast(SimMessage::Block(b)) if b.round() == 1)));
    }

    #[test]
    fn elections_follow_the_schedule() {
        // Cordial Miners proposes only on rounds 1, 6, 11, …: off-schedule
        // rounds never elect anyone.
        let cordial = ProtocolChoice::CordialMiners.leader_schedule();
        assert!(!elected(cordial, 0, 2));
        assert!(!elected(cordial, 0, 5));
        // Propose rounds elect exactly `leaders` among the committee.
        let mahi = ProtocolChoice::MahiMahi5 { leaders: 2 }.leader_schedule();
        let count = (0..4).filter(|&a| elected(mahi, a, 6)).count();
        assert_eq!(count, 2, "MahiMahi5 with 2 leaders elects 2 per round");
    }

    #[test]
    fn convicted_equivocator_is_excluded_from_parents() {
        // Validator 0 convicts v3 through at-source detection, then sees
        // every round-1 block before producing round 2 (the inclusion wait
        // holds production open): its later blocks must not reference
        // v3's chain.
        let setup = TestCommittee::new(4, 7);
        let protocol = ProtocolChoice::MahiMahi5 { leaders: 2 };
        let mut validators: Vec<SimValidator> = (0..3)
            .map(|a| {
                SimValidator::new(
                    AuthorityIndex(a),
                    setup.clone(),
                    protocol.committer(setup.committee().clone()),
                    Behavior::Honest,
                    false,
                    MempoolConfig::test(10_000, 100),
                    IngressConfig::default(),
                    true,
                    1_000, // hold round 2 open until all of round 1 is here
                    protocol.leader_schedule(),
                )
            })
            .collect();
        let mut equivocator = validator(3, Behavior::Equivocator, false);

        // The equivocator sprays two variants; deliver both to validator 0
        // FIRST so it convicts before its round-1 quorum completes — the
        // exclusion must then bite on the very next production.
        let mut round_one: Vec<(usize, Arc<Block>)> = Vec::new();
        let eq_actions = equivocator.maybe_advance(0);
        for action in &eq_actions {
            if let Action::Send(_, SimMessage::Block(block)) = action {
                round_one.push((3, block.clone()));
            }
        }
        for v in validators.iter_mut() {
            let actions = v.maybe_advance(0);
            if let Some(block) = broadcast_block(&actions) {
                round_one.push((v.authority().as_usize(), block));
            }
        }
        let mut target = validators.remove(0);
        for (from, block) in &round_one {
            if *from == 0 {
                continue;
            }
            target.on_message(100, *from, SimMessage::Block(block.clone()));
        }
        assert_eq!(target.convicted(), vec![AuthorityIndex(3)]);
        assert!(target.round() >= 2, "round advanced past the conviction");
        // Every block produced after the conviction shuns v3's blocks.
        for round in 2..=target.round() {
            let own = target
                .store()
                .blocks_in_slot(mahimahi_types::Slot::new(round, AuthorityIndex(0)));
            for block in own {
                assert!(
                    block
                        .parents()
                        .iter()
                        .all(|p| p.author != AuthorityIndex(3)),
                    "round {round} references the convicted equivocator"
                );
            }
        }
    }
}
