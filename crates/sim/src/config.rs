//! Simulation configuration.

use mahimahi_baselines::{CordialMinersCommitter, CordialMinersOptions, TuskCommitter};
use mahimahi_core::{Committer, CommitterOptions, IngressConfig, MempoolConfig, ProtocolCommitter};
use mahimahi_net::time::{self, Time};
use mahimahi_types::{Committee, Round};

/// Which consensus protocol a run exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolChoice {
    /// Mahi-Mahi with 5-round waves.
    MahiMahi5 {
        /// Leader slots per round (the paper evaluates 1–3, default 2).
        leaders: usize,
    },
    /// Mahi-Mahi with 4-round waves.
    MahiMahi4 {
        /// Leader slots per round.
        leaders: usize,
    },
    /// Cordial Miners (5-round non-overlapping waves, one leader).
    CordialMiners,
    /// Tusk over a certified DAG (3 certified rounds per wave).
    Tusk,
}

impl ProtocolChoice {
    /// Instantiates the committer for `committee`.
    pub fn committer(&self, committee: Committee) -> Box<dyn ProtocolCommitter> {
        match *self {
            ProtocolChoice::MahiMahi5 { leaders } => Box::new(Committer::new(
                committee,
                CommitterOptions::mahi_mahi_5(leaders),
            )),
            ProtocolChoice::MahiMahi4 { leaders } => Box::new(Committer::new(
                committee,
                CommitterOptions::mahi_mahi_4(leaders),
            )),
            ProtocolChoice::CordialMiners => Box::new(CordialMinersCommitter::new(
                committee,
                CordialMinersOptions::default(),
            )),
            ProtocolChoice::Tusk => Box::new(TuskCommitter::new(committee)),
        }
    }

    /// Whether blocks must be certified (consistent broadcast) before
    /// entering the DAG.
    pub fn certified(&self) -> bool {
        matches!(self, ProtocolChoice::Tusk)
    }

    /// The protocol's leader-slot timetable, used by attack strategies that
    /// target elected leaders (the coin is deterministic per round, so an
    /// omniscient attacker can precompute every election).
    pub fn leader_schedule(&self) -> LeaderSchedule {
        match *self {
            ProtocolChoice::MahiMahi5 { leaders } => LeaderSchedule {
                wave_length: 5,
                leaders,
                overlapping: true,
            },
            ProtocolChoice::MahiMahi4 { leaders } => LeaderSchedule {
                wave_length: 4,
                leaders,
                overlapping: true,
            },
            ProtocolChoice::CordialMiners => LeaderSchedule {
                wave_length: 5,
                leaders: 1,
                overlapping: false,
            },
            ProtocolChoice::Tusk => LeaderSchedule {
                wave_length: 3,
                leaders: 1,
                overlapping: false,
            },
        }
    }

    /// Display name matching the paper's figures.
    pub fn name(&self) -> String {
        match self {
            ProtocolChoice::MahiMahi5 { leaders } => format!("Mahi-Mahi-5 ({leaders}L)"),
            ProtocolChoice::MahiMahi4 { leaders } => format!("Mahi-Mahi-4 ({leaders}L)"),
            ProtocolChoice::CordialMiners => "Cordial-Miners".to_string(),
            ProtocolChoice::Tusk => "Tusk".to_string(),
        }
    }
}

/// When each protocol opens leader slots, for attacks that target them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaderSchedule {
    /// Rounds per wave (the coin for a propose round opens `wave_length - 1`
    /// rounds later).
    pub wave_length: u64,
    /// Leader slots per propose round.
    pub leaders: usize,
    /// Whether every round proposes (Mahi-Mahi's overlapping waves) or only
    /// the first round of each wave (Cordial Miners, Tusk).
    pub overlapping: bool,
}

impl LeaderSchedule {
    /// Whether `round` opens leader slots under this schedule.
    pub fn is_propose_round(&self, round: Round) -> bool {
        round >= 1 && (self.overlapping || (round - 1).is_multiple_of(self.wave_length))
    }

    /// The round whose coin elects `propose_round`'s leaders.
    pub fn certify_round(&self, propose_round: Round) -> Round {
        propose_round + self.wave_length - 1
    }
}

/// Validator behavior, assigned per authority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Behavior {
    /// Follows the protocol.
    #[default]
    Honest,
    /// Stops participating entirely at the given round (0 = never starts;
    /// the paper's crash-fault experiments use 0).
    Crashed {
        /// First round at which the validator is silent.
        from_round: Round,
    },
    /// Down for a window of simulated time (messages in the window are
    /// lost), then restarts and catches up through the synchronizer.
    Offline {
        /// Outage start.
        from: Time,
        /// Restart time.
        until: Time,
    },
    /// Produces two equivocating blocks per round, sending one variant to
    /// each half of the committee (disallowed under Tusk's certified DAG).
    Equivocator,
    /// Produces blocks but never sends them (its slots appear empty).
    Mute,
    /// Leader-slot withholding: precomputes the coin elections and, in any
    /// round where it owns a leader slot, discloses its block (or, under a
    /// certified DAG, its certificate) to only `f` peers — strictly fewer
    /// than the `f + 1` validity threshold — so no honest quorum can ever
    /// certify the slot. Off-slot rounds behave honestly, which makes the
    /// attack invisible to simple round-level accounting.
    WithholdingLeader,
    /// Coordinated split-brain equivocation: produces two variants per round
    /// and routes them along a partition boundary (peers below `minority`
    /// get one variant, the rest the other), so each side observes an
    /// internally consistent but globally conflicting chain. Pair with
    /// [`AdversaryChoice::Partition`] using the same `minority` to keep the
    /// halves from comparing notes until the partition heals.
    SplitBrainEquivocator {
        /// Number of nodes on the small side of the split (same value as the
        /// partition adversary's `minority`).
        minority: usize,
    },
    /// Lazy-proposer pacing attack: builds every block on time (so its own
    /// chain stays valid) but releases it to the network `delay` late,
    /// pressuring honest inclusion waits and round pacing.
    SlowProposer {
        /// How long each produced block is held back before dissemination.
        delay: Time,
    },
    /// DAG-fork spam: produces `forks` equivocating variants per round and
    /// sprays them round-robin across peers, maximizing store churn and
    /// synchronizer traffic (disallowed under Tusk's certified DAG).
    ForkSpammer {
        /// Number of conflicting variants per round (clamped to ≥ 2).
        forks: usize,
    },
    /// Adaptive attacker: instead of following a static schedule, it reads
    /// its own live DAG every propose round and picks victims from what it
    /// sees. On rounds where it owns a leader slot it withholds its block,
    /// disclosing it to only `f` peers — preferring the *laggards* (peers
    /// whose previous-round block has not arrived), the peers least able
    /// to relay the disclosure onward. On every other round it equivocates
    /// and routes the conflicting variant at those same laggards, who
    /// cannot immediately cross-check it against what the caught-up
    /// majority holds. Degrades to honest behavior under Tusk's certified
    /// DAG (consistent broadcast makes both halves of the attack moot).
    Adaptive,
}

impl Behavior {
    /// Whether the validator follows the protocol faithfully enough to be
    /// held to the agreement invariant: honest validators, validators that
    /// only pace their own blocks late, and validators that are temporarily
    /// down but never lie. Byzantine senders and (fully) crashed or mute
    /// validators are excluded.
    pub fn is_correct(&self) -> bool {
        matches!(
            self,
            Behavior::Honest | Behavior::Offline { .. } | Behavior::SlowProposer { .. }
        )
    }

    /// Whether the behavior actively deviates (sends conflicting or
    /// selectively withheld messages), as opposed to merely being slow,
    /// silent, or down. Mute is *not* Byzantine under this definition: a
    /// validator that never sends can cost liveness but cannot contradict
    /// itself.
    pub fn is_byzantine(&self) -> bool {
        matches!(
            self,
            Behavior::Equivocator
                | Behavior::WithholdingLeader
                | Behavior::SplitBrainEquivocator { .. }
                | Behavior::ForkSpammer { .. }
                | Behavior::Adaptive
        )
    }

    /// Whether the behavior signs conflicting blocks for the same slot —
    /// the misbehavior an `EquivocationProof` attributes. A strict subset
    /// of [`Behavior::is_byzantine`]: a withholding leader deviates but
    /// never contradicts itself, so no evidence can (or should) ever name
    /// it.
    pub fn equivocates(&self) -> bool {
        matches!(
            self,
            Behavior::Equivocator
                | Behavior::SplitBrainEquivocator { .. }
                | Behavior::ForkSpammer { .. }
                | Behavior::Adaptive
        )
    }

    /// Short machine-readable label for reports and scenario names.
    pub fn label(&self) -> &'static str {
        match self {
            Behavior::Honest => "honest",
            Behavior::Crashed { .. } => "crashed",
            Behavior::Offline { .. } => "offline",
            Behavior::Equivocator => "equivocator",
            Behavior::Mute => "mute",
            Behavior::WithholdingLeader => "withholding-leader",
            Behavior::SplitBrainEquivocator { .. } => "split-brain",
            Behavior::SlowProposer { .. } => "slow-proposer",
            Behavior::ForkSpammer { .. } => "fork-spammer",
            Behavior::Adaptive => "adaptive",
        }
    }
}

/// Network delay model selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyChoice {
    /// The paper's five-region AWS WAN (Ohio / Oregon / Cape Town /
    /// Hong Kong / Milan, real inter-region RTT matrix, validators
    /// assigned round-robin), with tunable per-link jitter.
    AwsWan {
        /// Multiplicative per-link jitter half-width in percent
        /// (5 → each sample scaled by a uniform factor in ±5%).
        jitter_percent: u64,
        /// Mean of the additive exponential-tail jitter (occasional slow
        /// packets; keeps the delay distribution right-skewed like a real
        /// WAN).
        tail_mean: Time,
    },
    /// Uniform delay in `[min, max]` (unit tests, controlled experiments).
    Uniform {
        /// Minimum one-way delay.
        min: Time,
        /// Maximum one-way delay.
        max: Time,
    },
}

impl LatencyChoice {
    /// The paper's WAN with its default jitter (±5% multiplicative, 2 ms
    /// exponential tail).
    pub fn aws_wan() -> Self {
        LatencyChoice::AwsWan {
            jitter_percent: 5,
            tail_mean: time::from_millis(2),
        }
    }
}

/// Delivery-schedule adversary selection (see `mahimahi-net`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversaryChoice {
    /// Benign network.
    None,
    /// The random network model: every validator advances with a uniformly
    /// random `2f + 1` subset each round.
    RandomSubset {
        /// Extra hold applied to non-subset blocks.
        hold: Time,
    },
    /// Continuously active asynchronous adversary delaying rotating targets.
    RotatingDelay {
        /// Number of simultaneously targeted authorities.
        targets: usize,
        /// Rounds between target rotations.
        period: u64,
        /// Extra delay applied to targeted blocks.
        extra: Time,
    },
    /// Network partition healing at the given time.
    Partition {
        /// Number of nodes split from the rest.
        minority: usize,
        /// Healing time.
        heals_at: Time,
    },
}

/// CPU cost model (microseconds). The paper attributes Tusk's overhead to
/// certificate verification; these knobs reproduce that effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuCosts {
    /// One signature verification.
    pub signature_verify: Time,
    /// One coin-share (DLEQ) verification.
    pub coin_share_verify: Time,
    /// Producing (hashing + signing) one block.
    pub block_creation: Time,
    /// Per-kilobyte hashing cost while verifying a block.
    pub hash_per_kb: Time,
    /// Batch-verification discount applied to certificate signature checks
    /// (1.0 = none, 0.5 = batching halves the cost). Expressed in percent to
    /// stay integer-typed.
    pub batch_discount_percent: u64,
}

impl Default for CpuCosts {
    fn default() -> Self {
        CpuCosts {
            signature_verify: 30,
            coin_share_verify: 60,
            block_creation: 50,
            hash_per_kb: 1,
            batch_discount_percent: 50,
        }
    }
}

impl CpuCosts {
    /// Cost of verifying an uncertified block of `size` bytes.
    pub fn block_verify(&self, size: usize) -> Time {
        self.signature_verify + self.coin_share_verify + self.hash_per_kb * (size as Time / 1024)
    }

    /// Cost of verifying a certificate carrying `signatures` signatures.
    pub fn certificate_verify(&self, signatures: usize) -> Time {
        self.signature_verify * signatures as Time * self.batch_discount_percent / 100
    }

    /// Cost of verifying `blocks` uncertified blocks totalling
    /// `total_bytes` together, through the admission pipeline's batched
    /// crypto path: the first block pays full price, every further block
    /// pays the batch-discounted signature and coin-share cost (the
    /// multi-scalar Schnorr combination and the shared per-round coin
    /// base), and hashing remains proportional to the bytes.
    pub fn block_verify_batched(&self, total_bytes: usize, blocks: usize) -> Time {
        if blocks == 0 {
            return 0;
        }
        let per_block_crypto = self.signature_verify + self.coin_share_verify;
        let discounted = per_block_crypto * self.batch_discount_percent / 100;
        per_block_crypto
            + discounted * (blocks as Time - 1)
            + self.hash_per_kb * (total_bytes as Time / 1024)
    }
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// The protocol under test.
    pub protocol: ProtocolChoice,
    /// Committee size `n` (the paper uses 10 and 50).
    pub committee_size: usize,
    /// Per-validator behavior overrides (`(authority, behavior)`);
    /// unlisted authorities are honest.
    pub behaviors: Vec<(usize, Behavior)>,
    /// Simulated run duration.
    pub duration: Time,
    /// Open-loop client load per validator (transactions per second).
    pub txs_per_second_per_validator: u64,
    /// Wire size of one transaction (the paper uses 512 bytes).
    pub tx_wire_size: usize,
    /// Mempool bounds and per-block payload budget applied at every
    /// validator: pool capacity in transactions and bytes, plus the
    /// `max_block_txs`/`max_block_bytes` drained into each produced block.
    pub mempool: MempoolConfig,
    /// Client-ingress policy applied at every validator: per-client token
    /// buckets and age-based mempool forwarding. The default is fully
    /// permissive (no rate limit, no forwarding), matching the paper's
    /// open-loop load experiments.
    pub ingress: IngressConfig,
    /// Whether validators keep the committed-digest set behind the
    /// `tx-integrity` accounting (duplicate-commit detection). On by
    /// default; the multi-million-transaction figure sweeps turn it off to
    /// halve digest-set growth (the mempool's accepted-digest dedup ledger
    /// remains either way — retention is the replay protection).
    pub track_tx_integrity: bool,
    /// Delay model.
    pub latency: LatencyChoice,
    /// Adversary model.
    pub adversary: AdversaryChoice,
    /// CPU cost model.
    pub cpu: CpuCosts,
    /// How long validators keep collecting previous-round blocks after the
    /// quorum arrived before advancing (round pacing; see
    /// `SimValidator`). 0 disables the wait.
    pub inclusion_wait: Time,
    /// Seed controlling all randomness in the run.
    pub seed: u64,
    /// Ignore transactions submitted before this fraction of the run when
    /// computing latency statistics (warm-up).
    pub warmup_fraction: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            protocol: ProtocolChoice::MahiMahi5 { leaders: 2 },
            committee_size: 4,
            behaviors: Vec::new(),
            duration: time::from_secs(10),
            txs_per_second_per_validator: 100,
            tx_wire_size: 512,
            mempool: MempoolConfig::default(),
            ingress: IngressConfig::default(),
            track_tx_integrity: true,
            latency: LatencyChoice::aws_wan(),
            adversary: AdversaryChoice::None,
            cpu: CpuCosts::default(),
            inclusion_wait: time::from_millis(50),
            seed: 42,
            warmup_fraction: 0.2,
        }
    }
}

impl SimConfig {
    /// The behavior of `authority`.
    pub fn behavior_of(&self, authority: usize) -> Behavior {
        self.behaviors
            .iter()
            .find(|(a, _)| *a == authority)
            .map(|(_, b)| *b)
            .unwrap_or_default()
    }

    /// Marks the last `count` authorities as crashed from the start (the
    /// paper's fault experiments crash the maximum `f`).
    pub fn with_crashed(mut self, count: usize) -> Self {
        for authority in self.committee_size.saturating_sub(count)..self.committee_size {
            self.behaviors
                .push((authority, Behavior::Crashed { from_round: 0 }));
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mahimahi_types::TestCommittee;

    #[test]
    fn batched_block_verify_discounts_every_block_after_the_first() {
        let cpu = CpuCosts::default();
        // One block batched costs exactly one serial verification.
        assert_eq!(cpu.block_verify_batched(2048, 1), cpu.block_verify(2048));
        // Empty batches are free; the zero cost model stays zero.
        assert_eq!(cpu.block_verify_batched(4096, 0), 0);
        let free = CpuCosts {
            signature_verify: 0,
            coin_share_verify: 0,
            block_creation: 0,
            hash_per_kb: 0,
            batch_discount_percent: 50,
        };
        assert_eq!(free.block_verify_batched(10_000, 8), 0);
        // Eight blocks: first at full price, seven discounted — strictly
        // cheaper than eight serial verifications, hashing unchanged.
        let serial: Time = (0..8).map(|_| cpu.block_verify(1024)).sum();
        let batched = cpu.block_verify_batched(8 * 1024, 8);
        assert!(batched < serial, "{batched} vs {serial}");
        let crypto = cpu.signature_verify + cpu.coin_share_verify;
        assert_eq!(
            batched,
            crypto + crypto * cpu.batch_discount_percent / 100 * 7 + cpu.hash_per_kb * 8
        );
    }

    #[test]
    fn protocol_names_and_certification() {
        assert!(ProtocolChoice::Tusk.certified());
        assert!(!ProtocolChoice::MahiMahi5 { leaders: 2 }.certified());
        assert!(ProtocolChoice::MahiMahi4 { leaders: 3 }
            .name()
            .contains("Mahi-Mahi-4"));
    }

    #[test]
    fn committers_instantiate() {
        let setup = TestCommittee::new(4, 1);
        for protocol in [
            ProtocolChoice::MahiMahi5 { leaders: 2 },
            ProtocolChoice::MahiMahi4 { leaders: 1 },
            ProtocolChoice::CordialMiners,
            ProtocolChoice::Tusk,
        ] {
            let committer = protocol.committer(setup.committee().clone());
            assert_eq!(committer.committee().size(), 4);
        }
    }

    #[test]
    fn with_crashed_marks_the_tail() {
        let config = SimConfig {
            committee_size: 10,
            ..SimConfig::default()
        }
        .with_crashed(3);
        assert_eq!(config.behavior_of(0), Behavior::Honest);
        assert_eq!(config.behavior_of(7), Behavior::Crashed { from_round: 0 });
        assert_eq!(config.behavior_of(9), Behavior::Crashed { from_round: 0 });
    }

    #[test]
    fn leader_schedules_match_the_protocols() {
        let mahi = ProtocolChoice::MahiMahi5 { leaders: 2 }.leader_schedule();
        assert!(mahi.overlapping);
        assert!(mahi.is_propose_round(1) && mahi.is_propose_round(2));
        assert!(!mahi.is_propose_round(0));
        assert_eq!(mahi.certify_round(3), 7);

        let cordial = ProtocolChoice::CordialMiners.leader_schedule();
        assert!(!cordial.overlapping);
        assert!(cordial.is_propose_round(1) && cordial.is_propose_round(6));
        assert!(!cordial.is_propose_round(2));

        let tusk = ProtocolChoice::Tusk.leader_schedule();
        assert_eq!(tusk.wave_length, 3);
        assert!(tusk.is_propose_round(4));
        assert!(!tusk.is_propose_round(5));
    }

    #[test]
    fn behavior_classification() {
        assert!(Behavior::Honest.is_correct());
        assert!(Behavior::SlowProposer { delay: 1 }.is_correct());
        assert!(Behavior::Offline { from: 0, until: 1 }.is_correct());
        assert!(!Behavior::Crashed { from_round: 0 }.is_correct());
        assert!(!Behavior::WithholdingLeader.is_correct());
        assert!(Behavior::ForkSpammer { forks: 3 }.is_byzantine());
        assert!(Behavior::SplitBrainEquivocator { minority: 1 }.is_byzantine());
        assert!(!Behavior::SlowProposer { delay: 1 }.is_byzantine());
        assert!(!Behavior::Mute.is_byzantine(), "silent, not contradictory");
        assert_eq!(Behavior::WithholdingLeader.label(), "withholding-leader");
    }

    #[test]
    fn cpu_costs_scale() {
        let cpu = CpuCosts::default();
        assert!(cpu.block_verify(10_240) > cpu.block_verify(1_024));
        assert_eq!(cpu.certificate_verify(7), 30 * 7 / 2);
    }
}
