//! Simulation harness: whole-protocol runs over the simulated WAN.
//!
//! This crate assembles the full system the paper benchmarks on AWS
//! (Section 5) — validators running a DAG committer, geo-distributed
//! clients submitting 512-byte transactions in an open loop, crash and
//! Byzantine faults — on top of the deterministic simulator in
//! `mahimahi-net`. One [`Simulation`] run produces a [`SimReport`] with the
//! paper's metrics: throughput (committed transactions per second) and
//! client-observed latency (submission → commit at the submitting
//! validator).
//!
//! The protocols under test are exactly the four systems of Figure 3:
//! Mahi-Mahi-5, Mahi-Mahi-4 (both with configurable leaders per round),
//! Cordial Miners, and Tusk. Tusk runs its certified pipeline: every block
//! is consistent-broadcast (proposal → acks → certificate) before entering
//! any DAG, costing three message delays per round and the certificate
//! verification CPU the paper attributes its latency/throughput gap to.
//!
//! # Example
//!
//! ```
//! use mahimahi_sim::{SimConfig, ProtocolChoice, Simulation};
//!
//! let config = SimConfig {
//!     protocol: ProtocolChoice::MahiMahi4 { leaders: 2 },
//!     committee_size: 4,
//!     duration: mahimahi_net::time::from_secs(5),
//!     txs_per_second_per_validator: 100,
//!     ..SimConfig::default()
//! };
//! let report = Simulation::new(config).run();
//! assert!(report.committed_transactions > 0);
//! assert!(report.latency.mean_s() < 3.0);
//! ```

mod config;
mod message;
mod metrics;
mod runner;
mod strategy;
mod validator;

pub use config::{
    AdversaryChoice, Behavior, CpuCosts, LatencyChoice, LeaderSchedule, ProtocolChoice, SimConfig,
};
pub use mahimahi_core::{
    IngressConfig, IngressReport, MempoolConfig, SubmitResult, TxIntegrityReport,
};
pub use message::{SimMessage, WireModel};
pub use metrics::{LatencySnapshot, LatencyStats, SimReport};
pub use runner::{SimOutcome, Simulation};
pub use validator::{Action, SimValidator};
