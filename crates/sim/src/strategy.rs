//! Byzantine [`ProposerStrategy`] implementations.
//!
//! The sans-I/O [`ValidatorEngine`] owns *when* a block is produced and
//! *what goes in it*; these strategies own how attack behaviors build and
//! route the result — conflicting variants, selective disclosure, paced
//! release. Keeping them here (rather than in `mahimahi-core`) means the
//! shared engine stays protocol-faithful while the simulator composes any
//! attack with it.
//!
//! [`ValidatorEngine`]: mahimahi_core::ValidatorEngine

use mahimahi_core::{HonestProposer, ProposeCtx, ProposerStrategy, Route};
use mahimahi_types::{AuthorityIndex, BlockRef, Envelope, Round, TestCommittee};
use std::collections::HashMap;

use crate::config::{Behavior, LeaderSchedule};

/// Precomputed leader-election answers for attack strategies that target
/// elected leaders.
///
/// The threshold coin is a deterministic function of the round, so an
/// attacker holding the dealer's secrets (the strongest rushing adversary
/// the paper's after-the-fact election defends against) can evaluate every
/// future election. The simulation's [`TestCommittee`] carries all coin
/// secrets, which is exactly that power.
pub(crate) struct Elector {
    authority: AuthorityIndex,
    setup: TestCommittee,
    schedule: LeaderSchedule,
    cache: HashMap<Round, bool>,
}

impl Elector {
    pub(crate) fn new(
        authority: AuthorityIndex,
        setup: TestCommittee,
        schedule: LeaderSchedule,
    ) -> Self {
        Elector {
            authority,
            setup,
            schedule,
            cache: HashMap::new(),
        }
    }

    /// Whether this validator owns a leader slot of `round`.
    pub(crate) fn is_elected_leader(&mut self, round: Round) -> bool {
        if !self.schedule.is_propose_round(round) {
            return false;
        }
        if let Some(&cached) = self.cache.get(&round) {
            return cached;
        }
        let committee = self.setup.committee();
        let certify = self.schedule.certify_round(round);
        let shares: Vec<_> = (0..committee.quorum_threshold())
            .map(|index| {
                self.setup
                    .coin_secret(AuthorityIndex(index as u32))
                    .share_for_round(certify)
            })
            .collect();
        let elected = committee
            .coin_public()
            .combine(certify, &shares)
            .map(|value| {
                (0..self.schedule.leaders).any(|offset| {
                    value.leader_slot(offset, committee.size()) == self.authority.as_u64()
                })
            })
            .unwrap_or(false);
        self.cache.insert(round, elected);
        elected
    }

    /// The first `f` peers other than this validator — the "< f + 1"
    /// disclosure set of the withholding attack: too few for any honest
    /// quorum to certify the withheld block.
    pub(crate) fn withholding_targets(&self) -> Vec<usize> {
        let committee = self.setup.committee();
        (0..committee.size())
            .filter(|&peer| peer != self.authority.as_usize())
            .take(committee.f())
            .collect()
    }
}

/// Two equivocating variants per round, one to each half of the committee.
/// Own chain continues on variant A; the halves sort it out through the
/// synchronizer.
struct EquivocatorStrategy;

impl ProposerStrategy for EquivocatorStrategy {
    fn propose(&mut self, ctx: &mut ProposeCtx<'_>) {
        let variant_a = ctx.build(Some(1));
        let variant_b = ctx.build(Some(2));
        ctx.admit_own(variant_a.clone());
        let n = ctx.committee_size();
        let own = ctx.authority().as_usize();
        for peer in 0..n {
            if peer == own {
                continue;
            }
            let variant = if peer < n / 2 {
                variant_a.clone()
            } else {
                variant_b.clone()
            };
            ctx.send(peer, Envelope::Block(variant));
        }
    }
}

/// Split-brain along the partition boundary: peers below `minority` see
/// variant A, the rest variant B, so each side builds on an internally
/// consistent but globally conflicting chain. Own chain extends this
/// validator's own side of the split.
struct SplitBrainStrategy {
    minority: usize,
}

impl ProposerStrategy for SplitBrainStrategy {
    fn propose(&mut self, ctx: &mut ProposeCtx<'_>) {
        let variant_a = ctx.build(Some(1));
        let variant_b = ctx.build(Some(2));
        let own = ctx.authority().as_usize();
        let own_side_a = own < self.minority;
        ctx.admit_own(if own_side_a {
            variant_a.clone()
        } else {
            variant_b.clone()
        });
        for peer in 0..ctx.committee_size() {
            if peer == own {
                continue;
            }
            let variant = if peer < self.minority {
                variant_a.clone()
            } else {
                variant_b.clone()
            };
            ctx.send(peer, Envelope::Block(variant));
        }
    }
}

/// `k` conflicting variants sprayed round-robin: every peer gets a
/// valid-looking block, but the slot holds `k` forks that the synchronizer
/// and commit rule must reconcile.
struct ForkSpammerStrategy {
    forks: usize,
}

impl ProposerStrategy for ForkSpammerStrategy {
    fn propose(&mut self, ctx: &mut ProposeCtx<'_>) {
        let n = ctx.committee_size();
        let k = self.forks.clamp(2, n.max(2));
        let variants: Vec<_> = (0..k)
            .map(|fork| ctx.build(Some(fork as u64 + 1)))
            .collect();
        ctx.admit_own(variants[0].clone());
        let own = ctx.authority().as_usize();
        for peer in 0..n {
            if peer == own {
                continue;
            }
            ctx.send(peer, Envelope::Block(variants[peer % k].clone()));
        }
    }
}

/// Leader-slot withholding: in any round where this validator owns a
/// leader slot, its block (or, under a certified DAG, its certificate)
/// reaches only `f` peers — strictly fewer than the `f + 1` validity
/// threshold — so no honest quorum can ever certify the slot. Off-slot
/// rounds behave honestly, which makes the attack invisible to simple
/// round-level accounting.
struct WithholdingStrategy {
    elector: Elector,
}

impl ProposerStrategy for WithholdingStrategy {
    fn propose(&mut self, ctx: &mut ProposeCtx<'_>) {
        if ctx.certified() {
            // The proposal must be public (acks are needed); the
            // certificate is what gets withheld, in `route_certificate`.
            HonestProposer.propose(ctx);
            return;
        }
        let block = ctx.build(None);
        ctx.admit_own(block.clone());
        if self.elector.is_elected_leader(ctx.round()) {
            for peer in self.elector.withholding_targets() {
                ctx.send(peer, Envelope::Block(block.clone()));
            }
        } else {
            ctx.broadcast(Envelope::Block(block));
        }
    }

    fn route_certificate(&mut self, certificate: Envelope, reference: BlockRef) -> Vec<Route> {
        if self.elector.is_elected_leader(reference.round) {
            // Certified-DAG variant of the withholding attack: the
            // certificate that would let peers admit the leader block
            // reaches fewer than f + 1 of them.
            self.elector
                .withholding_targets()
                .into_iter()
                .map(|peer| Route::Send(peer, certificate.clone()))
                .collect()
        } else {
            vec![Route::Broadcast(certificate)]
        }
    }
}

/// Lazy-proposer pacing attack: builds every block on time (so its own
/// chain stays valid) but releases it to the network `delay` late,
/// pressuring honest inclusion waits and round pacing.
struct SlowProposerStrategy {
    delay: u64,
}

impl ProposerStrategy for SlowProposerStrategy {
    fn propose(&mut self, ctx: &mut ProposeCtx<'_>) {
        let block = ctx.build(None);
        let release = ctx.now() + self.delay;
        if ctx.certified() {
            // Certified pipeline, paced late: the proposal itself is held
            // back, delaying the whole ack/certificate exchange.
            ctx.register_proposal(block.clone());
            ctx.delay_broadcast(release, Envelope::Proposal(block));
        } else {
            ctx.admit_own(block.clone());
            ctx.delay_broadcast(release, Envelope::Block(block));
        }
    }
}

/// Produces (and locally stores) blocks but never sends them: the slot
/// looks empty to everyone else.
struct MuteStrategy;

impl ProposerStrategy for MuteStrategy {
    fn propose(&mut self, ctx: &mut ProposeCtx<'_>) {
        let block = ctx.build(None);
        ctx.admit_own(block);
    }
}

/// The adaptive attacker: reads its live DAG each propose round and picks
/// victims from what it actually sees, instead of following a static
/// schedule like the other strategies.
///
/// Victim selection: the *laggards* — peers whose previous-round block has
/// not reached this validator's store (read through
/// [`ProposeCtx::authorities_at_round`]). A laggard is the most valuable
/// target on both halves of the attack: it cannot immediately cross-check
/// a conflicting variant against what the caught-up majority holds, and a
/// withheld disclosure handed to it is the least likely to be relayed
/// onward in time. Already-convicted peers are skipped
/// ([`ProposeCtx::convicted`]) — evidence against them is circulating, so
/// confusing them buys nothing.
///
/// - On rounds where the attacker owns a leader slot it withholds: the
///   block reaches only `f` peers (fewer than the `f + 1` validity
///   threshold), laggards first.
/// - On every other round it equivocates: variant B at the victims,
///   variant A everywhere else, own chain continuing on A.
struct AdaptiveStrategy {
    elector: Elector,
}

impl AdaptiveStrategy {
    /// The victims this round, in ascending authority order. Always a
    /// proper, non-empty subset of the peers: if the live view offers no
    /// usable laggard split (nobody lags, or everybody does), fall back to
    /// the peers past the quorum boundary.
    fn victims(&self, ctx: &ProposeCtx<'_>) -> Vec<usize> {
        let n = ctx.committee_size();
        let own = ctx.authority().as_usize();
        let present = ctx.authorities_at_round(ctx.round().saturating_sub(1));
        let convicted = ctx.convicted();
        let lagging: Vec<usize> = (0..n)
            .filter(|&peer| peer != own)
            .filter(|&peer| {
                let authority = AuthorityIndex::from(peer);
                !present.contains(authority) && !convicted.contains(authority)
            })
            .collect();
        if !lagging.is_empty() && lagging.len() < n - 1 {
            return lagging;
        }
        let past_quorum: Vec<usize> = (ctx.quorum_threshold()..n)
            .filter(|&peer| peer != own)
            .collect();
        if past_quorum.is_empty() {
            vec![(own + 1) % n]
        } else {
            past_quorum
        }
    }
}

impl ProposerStrategy for AdaptiveStrategy {
    fn propose(&mut self, ctx: &mut ProposeCtx<'_>) {
        let n = ctx.committee_size();
        let own = ctx.authority().as_usize();
        let victims = self.victims(ctx);
        if self.elector.is_elected_leader(ctx.round()) {
            // Leader slot: withhold. Disclose to exactly `f` peers —
            // victims (laggards) first, padded with the lowest-indexed
            // other peers if the DAG shows fewer than `f` laggards.
            let block = ctx.build(None);
            ctx.admit_own(block.clone());
            let f = n - ctx.quorum_threshold();
            let mut disclose: Vec<usize> = victims.iter().copied().take(f).collect();
            for peer in (0..n).filter(|&peer| peer != own) {
                if disclose.len() >= f {
                    break;
                }
                if !disclose.contains(&peer) {
                    disclose.push(peer);
                }
            }
            for peer in disclose {
                ctx.send(peer, Envelope::Block(block.clone()));
            }
            return;
        }
        let variant_a = ctx.build(Some(1));
        let variant_b = ctx.build(Some(2));
        ctx.admit_own(variant_a.clone());
        for peer in (0..n).filter(|&peer| peer != own) {
            let variant = if victims.contains(&peer) {
                variant_b.clone()
            } else {
                variant_a.clone()
            };
            ctx.send(peer, Envelope::Block(variant));
        }
    }
}

/// Maps a configured [`Behavior`] onto the strategy the engine runs.
///
/// Equivocation-based attacks degrade to honest behavior under a certified
/// DAG: consistent broadcast makes signing two blocks per slot pointless
/// (no conflicting certificate can form), matching the paper's threat
/// model for Tusk.
pub(crate) fn strategy_for(
    behavior: Behavior,
    certified: bool,
    authority: AuthorityIndex,
    setup: &TestCommittee,
    schedule: LeaderSchedule,
) -> Box<dyn ProposerStrategy> {
    match behavior {
        Behavior::Equivocator if !certified => Box::new(EquivocatorStrategy),
        Behavior::SplitBrainEquivocator { minority } if !certified => {
            Box::new(SplitBrainStrategy { minority })
        }
        Behavior::ForkSpammer { forks } if !certified => Box::new(ForkSpammerStrategy { forks }),
        Behavior::Adaptive if !certified => Box::new(AdaptiveStrategy {
            elector: Elector::new(authority, setup.clone(), schedule),
        }),
        Behavior::WithholdingLeader => Box::new(WithholdingStrategy {
            elector: Elector::new(authority, setup.clone(), schedule),
        }),
        Behavior::SlowProposer { delay } => Box::new(SlowProposerStrategy { delay }),
        Behavior::Mute => Box::new(MuteStrategy),
        _ => Box::new(HonestProposer),
    }
}
