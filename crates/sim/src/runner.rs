//! The simulation event loop.

use mahimahi_net::time::Time;
use mahimahi_net::{
    Adversary, GeoLatency, LatencyModel, MessageMeta, NetworkConfig, NoAdversary,
    PartitionAdversary, RandomSubsetAdversary, RotatingDelayAdversary, SimNetwork, UniformLatency,
};
use mahimahi_telemetry::{Stage, StageSnapshot, StageStats};
use mahimahi_types::{AuthorityIndex, TestCommittee};
use rand::Rng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use crate::config::{AdversaryChoice, Behavior, LatencyChoice, SimConfig};
use crate::message::{SimMessage, WireModel};
use crate::metrics::{LatencyStats, SimReport};
use crate::validator::{Action, SimValidator};

/// Runtime dispatch over the latency models (chosen per run).
#[allow(clippy::large_enum_variant)] // Geo carries the full region matrix; one instance per run
enum AnyLatency {
    Geo(GeoLatency),
    Uniform(UniformLatency),
}

impl LatencyModel for AnyLatency {
    fn sample<R: Rng + ?Sized>(&self, from: usize, to: usize, rng: &mut R) -> Time {
        match self {
            AnyLatency::Geo(model) => model.sample(from, to, rng),
            AnyLatency::Uniform(model) => model.sample(from, to, rng),
        }
    }

    fn mean(&self, from: usize, to: usize) -> Time {
        match self {
            AnyLatency::Geo(model) => model.mean(from, to),
            AnyLatency::Uniform(model) => model.mean(from, to),
        }
    }
}

/// Runtime dispatch over the adversaries.
enum AnyAdversary {
    None(NoAdversary),
    RandomSubset(RandomSubsetAdversary),
    Rotating(RotatingDelayAdversary),
    Partition(PartitionAdversary),
}

impl Adversary for AnyAdversary {
    fn schedule(&mut self, meta: MessageMeta, arrival: Time) -> Time {
        let scheduled = match self {
            AnyAdversary::None(adversary) => adversary.schedule(meta, arrival),
            AnyAdversary::RandomSubset(adversary) => adversary.schedule(meta, arrival),
            AnyAdversary::Rotating(adversary) => adversary.schedule(meta, arrival),
            AnyAdversary::Partition(adversary) => adversary.schedule(meta, arrival),
        };
        // The `Adversary::schedule` contract: asynchronous adversaries may
        // delay messages arbitrarily but never accelerate them (and never
        // travel back before the physical arrival computed by the latency
        // model). A violation here would silently break causality in every
        // downstream experiment, so it fails loudly in debug builds.
        debug_assert!(
            scheduled >= arrival,
            "adversary accelerated a message: {scheduled} < {arrival} (meta {meta:?})"
        );
        scheduled
    }
}

/// A delivery parked until the recipient's CPU frees up:
/// (resume time, sequence, from, to, message).
type DeferredDelivery = (Time, u64, usize, usize, SeqMessage);

/// Everything a finished run exposes per validator, beyond the observer's
/// metrics: committed-leader logs and convicted-equivocator sets.
#[derive(Debug)]
pub struct SimOutcome {
    /// Metrics at the observer validator.
    pub report: SimReport,
    /// Per-validator committed leader sequences (`None` = skipped slot),
    /// indexed by authority; crashed validators have empty logs.
    pub logs: Vec<Vec<Option<mahimahi_types::BlockRef>>>,
    /// Per-validator convicted-equivocator sets in index order — the
    /// output of the evidence pools after at-source detection plus gossip.
    pub culprits: Vec<Vec<mahimahi_types::AuthorityIndex>>,
    /// Per-validator transaction-pipeline accounting (mempool occupancy,
    /// rejections, conservation, duplicate commits), indexed by authority —
    /// what the `tx-integrity` scenario oracle checks.
    pub tx_integrity: Vec<mahimahi_core::TxIntegrityReport>,
    /// Per-validator ingress ledgers (receipts, commit notices,
    /// forwarding, rate limiting), indexed by authority — what the
    /// `receipt-integrity` scenario oracle checks.
    pub ingress: Vec<mahimahi_core::IngressReport>,
    /// Per-validator final execution-state root, indexed by authority —
    /// what the `state-root-agreement` scenario oracle compares.
    pub state_roots: Vec<mahimahi_types::StateRoot>,
    /// Per-validator signed checkpoints in position order — roots at
    /// *identical* commit positions, comparable even when validators
    /// finish at different frontiers.
    pub checkpoints: Vec<Vec<mahimahi_types::Checkpoint>>,
}

/// A full simulated deployment: committee, network, clients, clock.
pub struct Simulation {
    config: SimConfig,
    network: SimNetwork<SimMessage, AnyLatency, AnyAdversary>,
    validators: Vec<SimValidator>,
    /// Deliveries deferred because the recipient's CPU was busy.
    deferred: BinaryHeap<Reverse<DeferredDelivery>>,
    deferred_sequence: u64,
    /// Scheduled `maybe_advance` wake-ups: (time, sequence, validator).
    /// The sequence makes equal-timestamp pops FIFO — `BinaryHeap` is not
    /// stable, so without it the pop order of colliding wake-ups would
    /// depend on heap insertion history rather than on the seed.
    wakeups: BinaryHeap<Reverse<(Time, u64, usize)>>,
    wakeup_sequence: u64,
    /// Per-validator CPU availability.
    cpu_busy_until: Vec<Time>,
    now: Time,
    /// Next client batch time and id counter.
    next_batch_at: Time,
    next_tx_id: u64,
    /// Transactions due so far per honest validator (exact-rate clients).
    txs_due_per_validator: u64,
    /// Committed-transaction latency samples (post-warm-up submissions).
    latencies: LatencyStats,
    /// Per-validator commit-path stage histograms: the runner records the
    /// verify/resequence boundaries it owns (CPU cost, deferred wait), the
    /// engines report theirs through shared [`StageStats`] sinks.
    stage_stats: Vec<StageStats>,
    /// (commit time, count) pairs for throughput windowing at the observer.
    observer_commits: Vec<(Time, u64)>,
}

/// Wrapper making `SimMessage` usable inside the ordered heap (ordering is
/// by the tuple prefix only).
struct SeqMessage(SimMessage);

impl PartialEq for SeqMessage {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl Eq for SeqMessage {}
impl PartialOrd for SeqMessage {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for SeqMessage {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

/// Interval between client submission batches (quantizes open-loop arrival
/// times; small relative to WAN latencies).
const CLIENT_BATCH_INTERVAL: Time = 5_000; // 5 ms

impl Simulation {
    /// Builds a simulation from `config`.
    pub fn new(config: SimConfig) -> Self {
        let setup = TestCommittee::new(config.committee_size, config.seed);
        let nodes = config.committee_size;
        let latency = match config.latency {
            LatencyChoice::AwsWan {
                jitter_percent,
                tail_mean,
            } => AnyLatency::Geo(
                GeoLatency::aws(nodes).with_jitter(jitter_percent as f64 / 100.0, tail_mean),
            ),
            LatencyChoice::Uniform { min, max } => {
                AnyLatency::Uniform(UniformLatency::new(min, max))
            }
        };
        let quorum = setup.committee().quorum_threshold();
        let adversary = match config.adversary {
            AdversaryChoice::None => AnyAdversary::None(NoAdversary),
            AdversaryChoice::RandomSubset { hold } => AnyAdversary::RandomSubset(
                RandomSubsetAdversary::new(nodes, quorum, hold, config.seed ^ 0xada),
            ),
            AdversaryChoice::RotatingDelay {
                targets,
                period,
                extra,
            } => AnyAdversary::Rotating(RotatingDelayAdversary::new(nodes, targets, period, extra)),
            AdversaryChoice::Partition { minority, heals_at } => {
                AnyAdversary::Partition(PartitionAdversary::split_first(nodes, minority, heals_at))
            }
        };
        let network = SimNetwork::new(
            NetworkConfig::aws(nodes, config.seed ^ 0x7ea),
            latency,
            adversary,
        );
        let stage_stats: Vec<StageStats> = (0..nodes).map(|_| StageStats::detached()).collect();
        let validators = (0..nodes)
            .map(|index| {
                let mut validator = SimValidator::new(
                    AuthorityIndex::from(index),
                    setup.clone(),
                    config.protocol.committer(setup.committee().clone()),
                    config.behavior_of(index),
                    config.protocol.certified(),
                    config.mempool,
                    config.ingress,
                    config.track_tx_integrity,
                    config.inclusion_wait,
                    config.protocol.leader_schedule(),
                );
                // The engine shares this validator's stage histograms; the
                // sink is record-only, so determinism is untouched.
                validator.set_telemetry(Arc::new(stage_stats[index].clone()));
                validator
            })
            .collect();
        Simulation {
            network,
            validators,
            deferred: BinaryHeap::new(),
            deferred_sequence: 0,
            wakeups: BinaryHeap::new(),
            wakeup_sequence: 0,
            cpu_busy_until: vec![0; nodes],
            now: 0,
            next_batch_at: 0,
            next_tx_id: 0,
            txs_due_per_validator: 0,
            latencies: LatencyStats::default(),
            stage_stats,
            observer_commits: Vec::new(),
            config,
        }
    }

    /// Enqueues client transactions `(id, submit time)` at `validator`
    /// before the run starts — seeded-workload injection for the
    /// driver-equivalence tests (the open-loop clients use
    /// `txs_per_second_per_validator` instead).
    pub fn preload_transactions(
        &mut self,
        validator: usize,
        txs: impl IntoIterator<Item = (u64, Time)>,
    ) {
        self.validators[validator].submit_transactions(txs);
    }

    /// The first honest validator (identical commit sequences make any
    /// honest validator a valid observer).
    fn observer(&self) -> usize {
        (0..self.config.committee_size)
            .find(|&index| matches!(self.config.behavior_of(index), Behavior::Honest))
            .unwrap_or(0)
    }

    /// Runs to completion, returning the report plus every validator's
    /// committed-leader log (`None` entries are skips; crashed validators
    /// have empty logs). Used by the safety-property tests: all honest
    /// logs must be pairwise prefix-consistent.
    pub fn run_with_logs(self) -> (SimReport, Vec<Vec<Option<mahimahi_types::BlockRef>>>) {
        let outcome = self.run_full();
        (outcome.report, outcome.logs)
    }

    /// Runs to completion, returning every per-validator observable: the
    /// metrics report, the committed-leader logs, and each validator's
    /// convicted-equivocator set (fault attribution). The scenario
    /// harness's oracles consume this richer outcome.
    pub fn run_full(self) -> SimOutcome {
        let mut simulation = self;
        simulation.run_loop();
        let logs = simulation
            .validators
            .iter()
            .map(|validator| validator.commit_log().to_vec())
            .collect();
        let culprits = simulation
            .validators
            .iter()
            .map(|validator| validator.convicted())
            .collect();
        let tx_integrity = simulation
            .validators
            .iter()
            .map(|validator| validator.tx_integrity())
            .collect();
        let ingress = simulation
            .validators
            .iter()
            .map(|validator| validator.ingress_report())
            .collect();
        let state_roots = simulation
            .validators
            .iter()
            .map(|validator| validator.state_root())
            .collect();
        let checkpoints = simulation
            .validators
            .iter()
            .map(|validator| validator.checkpoints().to_vec())
            .collect();
        SimOutcome {
            logs,
            culprits,
            tx_integrity,
            ingress,
            state_roots,
            checkpoints,
            report: simulation.report(),
        }
    }

    /// Runs the simulation to completion and produces the report.
    pub fn run(mut self) -> SimReport {
        self.run_loop();
        self.report()
    }

    fn run_loop(&mut self) {
        // Kick-off: round-1 production on top of genesis.
        for index in 0..self.validators.len() {
            let actions = self.validators[index].maybe_advance(0);
            self.perform(index, actions);
        }

        loop {
            let next_network = self.network.next_delivery_time();
            let next_deferred = self.deferred.peek().map(|Reverse((time, ..))| *time);
            let next_wakeup = self.wakeups.peek().map(|Reverse((time, ..))| *time);
            let next_batch =
                (self.next_batch_at <= self.config.duration).then_some(self.next_batch_at);
            let Some(next) = [next_network, next_deferred, next_wakeup, next_batch]
                .into_iter()
                .flatten()
                .min()
            else {
                break;
            };
            if next > self.config.duration {
                break;
            }
            self.now = next;

            if Some(next) == next_wakeup {
                let Reverse((_, _, validator)) = self.wakeups.pop().expect("peeked");
                let actions = self.validators[validator].maybe_advance(self.now);
                self.perform(validator, actions);
                continue;
            }
            if Some(next) == next_batch {
                self.submit_client_batch();
                continue;
            }
            if Some(next) == next_deferred {
                let Reverse((_, _, from, to, SeqMessage(message))) =
                    self.deferred.pop().expect("peeked");
                self.process_message(from, to, message);
                continue;
            }
            let envelope = self.network.next_delivery().expect("peeked");
            self.dispatch(envelope.from, envelope.to, envelope.payload);
        }
    }

    /// Open-loop clients: each honest validator receives the transactions
    /// that fell due since the previous batch. Exact-rate accounting: after
    /// `t` seconds every honest validator has received `⌊t × rate⌋`
    /// transactions, whatever the batch interval.
    fn submit_client_batch(&mut self) {
        let rate = self.config.txs_per_second_per_validator;
        if rate == 0 {
            self.next_batch_at = self.config.duration + 1;
            return;
        }
        let due = (self.now as u128 * rate as u128 / mahimahi_net::time::SECOND as u128) as u64;
        let count = due.saturating_sub(self.txs_due_per_validator);
        self.txs_due_per_validator = due;
        for index in 0..self.validators.len() {
            if !matches!(self.config.behavior_of(index), Behavior::Honest) {
                continue;
            }
            let ids = (0..count).map(|_| {
                let id = self.next_tx_id;
                self.next_tx_id += 1;
                (id, self.now)
            });
            self.validators[index].submit_transactions(ids);
            // Inclusion happens at the next block production; nudge the
            // validator in case it is idle at a round boundary.
            let actions = self.validators[index].maybe_advance(self.now);
            self.perform(index, actions);
        }
        self.next_batch_at = self.now + CLIENT_BATCH_INTERVAL;
    }

    /// Applies CPU gating, then lets the recipient process the message.
    fn dispatch(&mut self, from: usize, to: usize, message: SimMessage) {
        let busy_until = self.cpu_busy_until[to];
        if busy_until > self.now {
            // The deferred heap is the simulator's resequencer: the message
            // waits exactly until the recipient's CPU frees up.
            self.stage_stats[to].record(Stage::Resequenced, busy_until - self.now);
            self.deferred_sequence += 1;
            self.deferred.push(Reverse((
                busy_until,
                self.deferred_sequence,
                from,
                to,
                SeqMessage(message),
            )));
            return;
        }
        self.stage_stats[to].record(Stage::Resequenced, 0);
        self.process_message(from, to, message);
    }

    fn process_message(&mut self, from: usize, to: usize, message: SimMessage) {
        // Charge verification CPU.
        let cpu = &self.config.cpu;
        let cost = match &message {
            SimMessage::Block(block) | SimMessage::Proposal(block) => cpu.block_verify(
                crate::message::block_wire_size(block, self.config.tx_wire_size),
            ),
            SimMessage::Ack { .. } => cpu.signature_verify,
            SimMessage::Certificate { signatures, .. } => cpu.certificate_verify(*signatures),
            SimMessage::Request(_) => 1,
            // Sync replies go through the admission pipeline's batched
            // crypto path: one multi-scalar signature check and a shared
            // per-round coin base across the whole reply.
            SimMessage::Response(blocks) => {
                let total_bytes: usize = blocks
                    .iter()
                    .map(|block| crate::message::block_wire_size(block, self.config.tx_wire_size))
                    .sum();
                cpu.block_verify_batched(total_bytes, blocks.len())
            }
            // A proof is two block verifications, batched the same way
            // (evidence is only as good as its signatures).
            SimMessage::Evidence(proof) => {
                let total_bytes: usize = [proof.first(), proof.second()]
                    .iter()
                    .map(|block| crate::message::block_wire_size(block, self.config.tx_wire_size))
                    .sum();
                cpu.block_verify_batched(total_bytes, 2)
            }
            // Client batches and forwarded mempool frames cost their
            // ingest hashing (digest dedup).
            SimMessage::TxBatch(transactions) | SimMessage::TxForward(transactions) => {
                1 + cpu.hash_per_kb
                    * ((transactions.len() * self.config.tx_wire_size) as Time / 1024)
            }
            // Receipts carry no signatures; parsing is the only cost.
            SimMessage::TxReceipt(_) => 1,
            // One signature check per checkpoint attestation.
            SimMessage::Checkpoint(_) => cpu.signature_verify,
            SimMessage::CheckpointRequest => 1,
            SimMessage::CheckpointResponse { checkpoints, .. } => {
                cpu.signature_verify * checkpoints.len() as Time
            }
        };
        self.cpu_busy_until[to] = self.now + cost;
        // The charged CPU time *is* the verify-stage latency in this model.
        self.stage_stats[to].record(Stage::Verified, cost);
        let actions = self.validators[to].on_message(self.now, from, message);
        self.perform(to, actions);
    }

    /// Executes validator actions: network sends and latency bookkeeping.
    fn perform(&mut self, origin: usize, actions: Vec<Action>) {
        let observer = self.observer();
        for action in actions {
            match action {
                Action::Broadcast(message) => {
                    // Block creation costs CPU on the producer.
                    if matches!(message, SimMessage::Block(_) | SimMessage::Proposal(_)) {
                        self.cpu_busy_until[origin] = self.cpu_busy_until[origin].max(self.now)
                            + self.config.cpu.block_creation;
                    }
                    let size = message.wire_size(self.config.tx_wire_size);
                    let round = message.round();
                    self.network
                        .broadcast(self.now, origin, size, round, message);
                }
                Action::Send(to, message) => {
                    if to >= self.validators.len() {
                        // A receipt addressed to an external client: the
                        // simulator's open-loop clients have no inbox, so
                        // the frame is dropped at the network edge (the
                        // engine-side ingress ledger already counted it).
                        continue;
                    }
                    let size = message.wire_size(self.config.tx_wire_size);
                    let round = message.round();
                    self.network
                        .send(self.now, origin, to, size, round, message);
                }
                Action::TxsCommitted(submits) => {
                    let warmup =
                        (self.config.duration as f64 * self.config.warmup_fraction) as Time;
                    for submitted in submits {
                        if submitted >= warmup {
                            self.latencies.record(self.now - submitted);
                        }
                    }
                    let _ = observer;
                }
                Action::WakeAt(time) => {
                    self.wakeup_sequence += 1;
                    self.wakeups
                        .push(Reverse((time.max(self.now), self.wakeup_sequence, origin)));
                }
            }
        }
    }

    fn report(mut self) -> SimReport {
        let observer_index = self.observer();
        let observer = &self.validators[observer_index];
        let duration_s = mahimahi_net::time::as_secs_f64(self.config.duration);
        let warmup = (self.config.duration as f64 * self.config.warmup_fraction) as Time;
        let window_s = mahimahi_net::time::as_secs_f64(self.config.duration - warmup);

        // Throughput: committed transactions at the observer over the
        // post-warm-up window, approximated by scaling the total count by
        // the window share (commits are spread evenly in steady state).
        let committed = observer.committed_transactions();
        let throughput = if window_s > 0.0 {
            committed as f64 * (window_s / duration_s) / window_s
        } else {
            0.0
        };

        let honest = (0..self.config.committee_size)
            .filter(|&i| matches!(self.config.behavior_of(i), Behavior::Honest))
            .count();
        let offered = self.config.txs_per_second_per_validator * honest as u64;
        self.observer_commits.clear();
        // Merge the honest validators' stage histograms: faulty behaviors
        // would pollute the pipeline picture with intentionally weird
        // timings.
        let mut stages = StageSnapshot::default();
        for index in 0..self.config.committee_size {
            if matches!(self.config.behavior_of(index), Behavior::Honest) {
                stages.merge(&self.stage_stats[index].snapshot());
            }
        }
        SimReport {
            protocol: self.config.protocol.name(),
            committee_size: self.config.committee_size,
            faulty: self.config.committee_size - honest,
            offered_load_tps: offered,
            duration_s,
            committed_transactions: committed,
            throughput_tps: throughput,
            latency: self.latencies,
            stages,
            highest_round: observer.store().highest_round(),
            committed_slots: observer.committed_slots(),
            skipped_slots: observer.skipped_slots(),
            sequenced_blocks: observer.sequenced_blocks(),
            network_bytes: self.network.bytes_sent(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolChoice;
    use mahimahi_net::time;

    fn base_config(protocol: ProtocolChoice) -> SimConfig {
        SimConfig {
            protocol,
            committee_size: 4,
            duration: time::from_secs(5),
            txs_per_second_per_validator: 50,
            latency: LatencyChoice::Uniform {
                min: time::from_millis(40),
                max: time::from_millis(60),
            },
            seed: 7,
            ..SimConfig::default()
        }
    }

    #[test]
    fn mahi_mahi_5_commits_transactions() {
        let report = Simulation::new(base_config(ProtocolChoice::MahiMahi5 { leaders: 2 })).run();
        assert!(report.committed_transactions > 0, "{report:?}");
        assert!(report.highest_round > 20, "{report:?}");
        assert!(!report.latency.is_empty());
        assert!(report.latency.mean_s() < 2.0, "{}", report.latency.mean_s());
    }

    #[test]
    fn mahi_mahi_4_is_faster_than_5() {
        let five = Simulation::new(base_config(ProtocolChoice::MahiMahi5 { leaders: 2 })).run();
        let four = Simulation::new(base_config(ProtocolChoice::MahiMahi4 { leaders: 2 })).run();
        assert!(
            four.latency.mean_s() < five.latency.mean_s(),
            "MM4 {} !< MM5 {}",
            four.latency.mean_s(),
            five.latency.mean_s()
        );
    }

    #[test]
    fn cordial_miners_commits_but_slower_than_mahi_mahi() {
        let mahi = Simulation::new(base_config(ProtocolChoice::MahiMahi5 { leaders: 2 })).run();
        let cordial = Simulation::new(base_config(ProtocolChoice::CordialMiners)).run();
        assert!(cordial.committed_transactions > 0);
        assert!(
            cordial.latency.mean_s() > mahi.latency.mean_s(),
            "CM {} !> MM5 {}",
            cordial.latency.mean_s(),
            mahi.latency.mean_s()
        );
    }

    #[test]
    fn tusk_commits_with_highest_latency() {
        let tusk = Simulation::new(base_config(ProtocolChoice::Tusk)).run();
        assert!(tusk.committed_transactions > 0, "{tusk:?}");
        let mahi = Simulation::new(base_config(ProtocolChoice::MahiMahi4 { leaders: 2 })).run();
        assert!(
            tusk.latency.mean_s() > 1.5 * mahi.latency.mean_s(),
            "Tusk {} vs MM4 {}",
            tusk.latency.mean_s(),
            mahi.latency.mean_s()
        );
    }

    #[test]
    fn crash_faults_do_not_block_commits() {
        let config = base_config(ProtocolChoice::MahiMahi5 { leaders: 2 }).with_crashed(1);
        let report = Simulation::new(config).run();
        assert!(report.committed_transactions > 0, "{report:?}");
        assert!(report.skipped_slots > 0, "crashed slots must be skipped");
    }

    #[test]
    fn equivocator_does_not_break_safety_or_liveness() {
        let mut config = base_config(ProtocolChoice::MahiMahi5 { leaders: 2 });
        config.behaviors = vec![(3, Behavior::Equivocator)];
        let report = Simulation::new(config).run();
        assert!(report.committed_transactions > 0, "{report:?}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Simulation::new(base_config(ProtocolChoice::MahiMahi4 { leaders: 2 })).run();
        let b = Simulation::new(base_config(ProtocolChoice::MahiMahi4 { leaders: 2 })).run();
        assert_eq!(a.committed_transactions, b.committed_transactions);
        assert_eq!(a.highest_round, b.highest_round);
    }

    #[test]
    fn active_attacks_do_not_block_commits() {
        for behavior in [
            Behavior::WithholdingLeader,
            Behavior::SplitBrainEquivocator { minority: 1 },
            Behavior::SlowProposer {
                delay: time::from_millis(120),
            },
            Behavior::ForkSpammer { forks: 3 },
        ] {
            let mut config = base_config(ProtocolChoice::MahiMahi5 { leaders: 2 });
            config.behaviors = vec![(3, behavior)];
            let report = Simulation::new(config).run();
            assert!(
                report.committed_transactions > 0,
                "{behavior:?}: {report:?}"
            );
        }
    }

    #[test]
    fn equivocators_are_attributed_and_convictions_converge() {
        for behavior in [
            Behavior::Equivocator,
            Behavior::SplitBrainEquivocator { minority: 1 },
            Behavior::ForkSpammer { forks: 3 },
            Behavior::Adaptive,
        ] {
            let mut config = base_config(ProtocolChoice::MahiMahi5 { leaders: 2 });
            config.behaviors = vec![(3, behavior)];
            let outcome = Simulation::new(config).run_full();
            // Every honest validator converges on exactly the culprit.
            for validator in 0..3 {
                assert_eq!(
                    outcome.culprits[validator],
                    vec![AuthorityIndex(3)],
                    "{behavior:?}: validator {validator} attribution"
                );
            }
        }
        // All-honest run: nobody is ever convicted (no false positives).
        let outcome =
            Simulation::new(base_config(ProtocolChoice::MahiMahi5 { leaders: 2 })).run_full();
        assert!(outcome.culprits.iter().all(Vec::is_empty));
    }

    #[test]
    fn validator_offline_during_gossip_still_converges_on_culprits() {
        // Validator 1 is down for the first 4 of 5 seconds — it misses the
        // flood-once Evidence broadcasts entirely. The synchronizer-driven
        // evidence catch-up (convictions piggybacked on Request replies)
        // must still converge it on the culprit set.
        let mut config = base_config(ProtocolChoice::MahiMahi5 { leaders: 2 });
        config.behaviors = vec![
            (
                1,
                Behavior::Offline {
                    from: 0,
                    until: time::from_secs(4),
                },
            ),
            (3, Behavior::SplitBrainEquivocator { minority: 1 }),
        ];
        let outcome = Simulation::new(config).run_full();
        for validator in [0, 1, 2] {
            assert_eq!(
                outcome.culprits[validator],
                vec![AuthorityIndex(3)],
                "validator {validator} must attribute v3 despite the outage"
            );
        }
    }

    #[test]
    fn split_brain_with_matching_partition_preserves_agreement() {
        let mut config = base_config(ProtocolChoice::MahiMahi4 { leaders: 2 });
        config.behaviors = vec![(3, Behavior::SplitBrainEquivocator { minority: 1 })];
        config.adversary = AdversaryChoice::Partition {
            minority: 1,
            heals_at: time::from_secs(2),
        };
        let (report, logs) = Simulation::new(config).run_with_logs();
        assert!(report.committed_transactions > 0, "{report:?}");
        // The three correct validators (0 was partitioned, not faulty) must
        // agree on a common prefix despite the coordinated equivocation.
        for i in 0..3 {
            for j in (i + 1)..3 {
                let len = logs[i].len().min(logs[j].len());
                assert_eq!(&logs[i][..len], &logs[j][..len], "{i} vs {j}");
            }
        }
    }

    #[test]
    fn withholding_leader_under_tusk_commits() {
        let mut config = base_config(ProtocolChoice::Tusk);
        config.behaviors = vec![(3, Behavior::WithholdingLeader)];
        let report = Simulation::new(config).run();
        assert!(report.committed_transactions > 0, "{report:?}");
    }

    #[test]
    fn colliding_wakeups_pop_in_insertion_order() {
        // Wake-ups scheduled for the identical instant must pop FIFO
        // regardless of the heap shape at push time — `BinaryHeap` alone is
        // not stable, and an insertion-history-dependent pop order at equal
        // timestamps would break seed reproducibility. The interleaved
        // later entry perturbs the heap exactly the way a live run does.
        let mut sim = Simulation::new(base_config(ProtocolChoice::MahiMahi5 { leaders: 2 }));
        let collide = time::from_millis(500);
        let later = time::from_millis(700);
        for (validator, at) in [
            (3, collide),
            (0, later),
            (1, collide),
            (2, collide),
            (0, collide),
        ] {
            sim.perform(validator, vec![Action::WakeAt(at)]);
        }
        let mut popped = Vec::new();
        while let Some(Reverse((at, _, validator))) = sim.wakeups.pop() {
            popped.push((at, validator));
        }
        assert_eq!(
            popped,
            vec![
                (collide, 3),
                (collide, 1),
                (collide, 2),
                (collide, 0),
                (later, 0)
            ]
        );
    }

    #[test]
    fn random_subset_adversary_keeps_liveness() {
        let mut config = base_config(ProtocolChoice::MahiMahi5 { leaders: 2 });
        config.adversary = AdversaryChoice::RandomSubset {
            hold: time::from_millis(80),
        };
        let report = Simulation::new(config).run();
        assert!(report.committed_transactions > 0, "{report:?}");
    }
}
