//! Messages exchanged between simulated validators.

use mahimahi_types::{AuthorityIndex, Block, BlockRef, EquivocationProof};
use std::sync::Arc;

/// The wire messages of the simulation.
///
/// Uncertified protocols (Mahi-Mahi, Cordial Miners) use only [`Block`],
/// [`Request`], and [`Response`]. Tusk's certified pipeline adds the
/// consistent-broadcast triple [`Proposal`] → [`Ack`] → [`Certificate`].
///
/// [`Block`]: SimMessage::Block
/// [`Request`]: SimMessage::Request
/// [`Response`]: SimMessage::Response
/// [`Proposal`]: SimMessage::Proposal
/// [`Ack`]: SimMessage::Ack
/// [`Certificate`]: SimMessage::Certificate
#[derive(Debug, Clone)]
pub enum SimMessage {
    /// Best-effort block dissemination (uncertified DAGs).
    Block(Arc<Block>),
    /// Certified pipeline step 1: a block awaiting acknowledgements.
    Proposal(Arc<Block>),
    /// Certified pipeline step 2: a signed acknowledgement back to the
    /// author.
    Ack {
        /// The acknowledged block.
        reference: BlockRef,
        /// The acknowledging validator.
        voter: AuthorityIndex,
    },
    /// Certified pipeline step 3: the certificate releasing the block into
    /// the DAG. Carries the number of aggregated signatures (CPU model).
    Certificate {
        /// The certified block's reference (recipients hold the proposal).
        reference: BlockRef,
        /// Signatures aggregated in the certificate.
        signatures: usize,
    },
    /// Synchronizer: ask the peer for missing blocks.
    Request(Vec<BlockRef>),
    /// Synchronizer: blocks answering a [`SimMessage::Request`].
    Response(Vec<Arc<Block>>),
    /// Fault attribution: a self-contained equivocation proof, gossiped so
    /// every honest validator converges on the same culprit set.
    Evidence(EquivocationProof),
}

impl SimMessage {
    /// Serialized size in bytes, for the bandwidth model.
    ///
    /// Block payloads are accounted at `tx_wire_size` bytes per transaction
    /// (the simulator carries 8-byte synthetic transactions in memory but
    /// charges full wire size — DESIGN.md §3).
    pub fn wire_size(&self, tx_wire_size: usize) -> usize {
        match self {
            SimMessage::Block(block) | SimMessage::Proposal(block) => {
                block_wire_size(block, tx_wire_size)
            }
            SimMessage::Ack { .. } => 64,
            SimMessage::Certificate { signatures, .. } => 44 + 16 * signatures,
            SimMessage::Request(refs) => 16 + 44 * refs.len(),
            SimMessage::Response(blocks) => {
                16 + blocks
                    .iter()
                    .map(|block| block_wire_size(block, tx_wire_size))
                    .sum::<usize>()
            }
            SimMessage::Evidence(proof) => {
                16 + block_wire_size(proof.first(), tx_wire_size)
                    + block_wire_size(proof.second(), tx_wire_size)
            }
        }
    }

    /// The DAG round this message concerns (0 for control traffic) — what
    /// the adversary is allowed to observe.
    pub fn round(&self) -> u64 {
        match self {
            SimMessage::Block(block) | SimMessage::Proposal(block) => block.round(),
            SimMessage::Ack { reference, .. } | SimMessage::Certificate { reference, .. } => {
                reference.round
            }
            SimMessage::Request(_) | SimMessage::Response(_) => 0,
            SimMessage::Evidence(proof) => proof.round(),
        }
    }
}

/// Wire size of a block with transactions inflated to their configured
/// benchmark size.
pub fn block_wire_size(block: &Block, tx_wire_size: usize) -> usize {
    let actual: usize = block.transactions().iter().map(|tx| tx.len()).sum();
    let billed = block.transactions().len() * tx_wire_size;
    block.serialized_size() - actual + billed
}

#[cfg(test)]
mod tests {
    use super::*;
    use mahimahi_types::AuthorityIndex;

    #[test]
    fn wire_sizes_scale_with_content() {
        let genesis = Block::genesis(AuthorityIndex(0)).into_arc();
        let block_size = SimMessage::Block(genesis.clone()).wire_size(512);
        assert!(block_size > 0);
        let ack = SimMessage::Ack {
            reference: genesis.reference(),
            voter: AuthorityIndex(1),
        };
        assert!(ack.wire_size(512) < block_size * 10);
        let cert = SimMessage::Certificate {
            reference: genesis.reference(),
            signatures: 7,
        };
        assert_eq!(cert.wire_size(512), 44 + 112);
    }

    #[test]
    fn rounds_reported_to_adversary() {
        let genesis = Block::genesis(AuthorityIndex(0)).into_arc();
        assert_eq!(SimMessage::Block(genesis.clone()).round(), 0);
        assert_eq!(SimMessage::Request(vec![]).round(), 0);
        assert_eq!(
            SimMessage::Ack {
                reference: genesis.reference(),
                voter: AuthorityIndex(1)
            }
            .round(),
            0
        );
    }

    #[test]
    fn transaction_inflation() {
        use mahimahi_types::{BlockBuilder, TestCommittee, Transaction};
        let setup = TestCommittee::new(4, 1);
        let genesis = Block::all_genesis(4);
        let mut parents = vec![genesis[0].reference()];
        parents.extend(genesis[1..].iter().map(Block::reference));
        let block = BlockBuilder::new(AuthorityIndex(0), 1)
            .parents(parents)
            .transactions((0..10u64).map(|i| Transaction::new(i.to_le_bytes().to_vec())))
            .build(&setup);
        let real = block.serialized_size();
        let billed = block_wire_size(&block, 512);
        assert_eq!(billed, real - 10 * 8 + 10 * 512);
    }
}
