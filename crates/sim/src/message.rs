//! Messages exchanged between simulated validators, plus the bandwidth
//! model that prices them.
//!
//! The simulator speaks the workspace-wide wire vocabulary directly:
//! [`SimMessage`] *is* [`mahimahi_types::Envelope`], the same enum the TCP
//! node serializes over its transport. The simulator never materializes
//! bytes — it carries envelopes by value through the virtual network — so
//! the size and round accounting the network model needs lives here as the
//! [`WireModel`] extension trait.
//!
//! Uncertified protocols (Mahi-Mahi, Cordial Miners) use only
//! [`Envelope::Block`], [`Envelope::Request`], [`Envelope::Response`], and
//! [`Envelope::Evidence`]. Tusk's certified pipeline adds the
//! consistent-broadcast triple [`Envelope::Proposal`] → [`Envelope::Ack`]
//! → [`Envelope::Certificate`].

use mahimahi_types::{Block, Encode, Envelope};

/// The wire message of the simulation — the shared driver vocabulary.
pub type SimMessage = Envelope;

/// Size/round accounting over [`Envelope`] for the simulated network
/// (bandwidth model and adversary visibility).
pub trait WireModel {
    /// Serialized size in bytes, for the bandwidth model.
    ///
    /// Block payloads are accounted at `tx_wire_size` bytes per transaction
    /// (the simulator carries 8-byte synthetic transactions in memory but
    /// charges full wire size — DESIGN.md §3).
    fn wire_size(&self, tx_wire_size: usize) -> usize;

    /// The DAG round this message concerns (0 for control traffic) — what
    /// the adversary is allowed to observe.
    fn round(&self) -> u64;
}

impl WireModel for Envelope {
    fn wire_size(&self, tx_wire_size: usize) -> usize {
        match self {
            Envelope::Block(block) | Envelope::Proposal(block) => {
                block_wire_size(block, tx_wire_size)
            }
            Envelope::Ack { .. } => 64,
            Envelope::Certificate { signatures, .. } => 44 + 16 * signatures,
            Envelope::Request(refs) => 16 + 44 * refs.len(),
            Envelope::Response(blocks) => {
                16 + blocks
                    .iter()
                    .map(|block| block_wire_size(block, tx_wire_size))
                    .sum::<usize>()
            }
            Envelope::Evidence(proof) => {
                16 + block_wire_size(proof.first(), tx_wire_size)
                    + block_wire_size(proof.second(), tx_wire_size)
            }
            Envelope::TxBatch(transactions) | Envelope::TxForward(transactions) => {
                16 + transactions.len() * tx_wire_size
            }
            // Receipt frames are tiny: a kind byte, a tag or two, and one
            // verdict byte per transaction.
            Envelope::TxReceipt(receipt) => 16 + receipt.encoded_len(),
            // Checkpoint attestation: encoded size (no transactions).
            Envelope::Checkpoint(checkpoint) => checkpoint.encoded_len(),
            Envelope::CheckpointRequest => 16,
            Envelope::CheckpointResponse {
                checkpoints,
                execution,
                resume,
            } => {
                16 + checkpoints.iter().map(Encode::encoded_len).sum::<usize>()
                    + execution.len()
                    + resume.len()
            }
        }
    }

    fn round(&self) -> u64 {
        match self {
            Envelope::Block(block) | Envelope::Proposal(block) => block.round(),
            Envelope::Ack { reference, .. } | Envelope::Certificate { reference, .. } => {
                reference.round
            }
            Envelope::Request(_)
            | Envelope::Response(_)
            | Envelope::TxBatch(_)
            | Envelope::TxForward(_)
            | Envelope::TxReceipt(_)
            | Envelope::Checkpoint(_)
            | Envelope::CheckpointRequest
            | Envelope::CheckpointResponse { .. } => 0,
            Envelope::Evidence(proof) => proof.round(),
        }
    }
}

/// Wire size of a block with transactions inflated to their configured
/// benchmark size.
pub fn block_wire_size(block: &Block, tx_wire_size: usize) -> usize {
    let actual: usize = block.transactions().iter().map(|tx| tx.len()).sum();
    let billed = block.transactions().len() * tx_wire_size;
    block.serialized_size() - actual + billed
}

#[cfg(test)]
mod tests {
    use super::*;
    use mahimahi_types::AuthorityIndex;

    #[test]
    fn wire_sizes_scale_with_content() {
        let genesis = Block::genesis(AuthorityIndex(0)).into_arc();
        let block_size = SimMessage::Block(genesis.clone()).wire_size(512);
        assert!(block_size > 0);
        let ack = SimMessage::Ack {
            reference: genesis.reference(),
            voter: AuthorityIndex(1),
        };
        assert!(ack.wire_size(512) < block_size * 10);
        let cert = SimMessage::Certificate {
            reference: genesis.reference(),
            signatures: 7,
        };
        assert_eq!(cert.wire_size(512), 44 + 112);
    }

    #[test]
    fn rounds_reported_to_adversary() {
        let genesis = Block::genesis(AuthorityIndex(0)).into_arc();
        assert_eq!(WireModel::round(&SimMessage::Block(genesis.clone())), 0);
        assert_eq!(WireModel::round(&SimMessage::Request(vec![])), 0);
        assert_eq!(
            WireModel::round(&SimMessage::Ack {
                reference: genesis.reference(),
                voter: AuthorityIndex(1)
            }),
            0
        );
    }

    #[test]
    fn transaction_inflation() {
        use mahimahi_types::{BlockBuilder, TestCommittee, Transaction};
        let setup = TestCommittee::new(4, 1);
        let genesis = Block::all_genesis(4);
        let mut parents = vec![genesis[0].reference()];
        parents.extend(genesis[1..].iter().map(Block::reference));
        let block = BlockBuilder::new(AuthorityIndex(0), 1)
            .parents(parents)
            .transactions((0..10u64).map(|i| Transaction::new(i.to_le_bytes().to_vec())))
            .build(&setup);
        let real = block.serialized_size();
        let billed = block_wire_size(&block, 512);
        assert_eq!(billed, real - 10 * 8 + 10 * 512);
    }

    #[test]
    fn sim_messages_are_wire_envelopes() {
        // The simulator's message type is literally the node's wire enum:
        // anything the sim can say round-trips through the codec.
        use mahimahi_types::{Decode, Encode};
        let genesis = Block::genesis(AuthorityIndex(2)).into_arc();
        let bytes = SimMessage::Block(genesis.clone()).to_bytes_vec();
        let decoded = SimMessage::from_bytes_exact(&bytes).unwrap();
        assert!(matches!(decoded, SimMessage::Block(b) if b.reference() == genesis.reference()));
    }
}
