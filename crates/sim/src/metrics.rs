//! Run metrics: the quantities the paper's figures plot.

use mahimahi_net::time::{self, Time};

/// Latency sample statistics (client submission → commit).
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    samples: Vec<Time>,
    sorted: bool,
}

impl LatencyStats {
    /// Records one latency sample.
    pub fn record(&mut self, latency: Time) {
        self.samples.push(latency);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean latency in seconds (0 when empty).
    ///
    /// Computed entirely in `f64`: averaging in integer [`Time`] first
    /// truncates (a sub-microsecond-resolved mean collapses toward 0 on
    /// small samples), which skewed every latency table.
    pub fn mean_s(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.samples.iter().map(|&s| s as f64).sum();
        sum / self.samples.len() as f64 / time::SECOND as f64
    }

    fn sort(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// The `q`-quantile latency in seconds (0 when empty), using the ceil
    /// nearest-rank convention: the smallest sample such that at least
    /// `q · n` samples are ≤ it (rank `⌈q · n⌉`). The previous
    /// `round((n − 1) · q)` interpolation underestimates tail quantiles on
    /// small samples — e.g. p99 of 60 samples picked the 59th sorted value
    /// instead of the maximum that nearest-rank prescribes — so tail
    /// latency on sparse runs looked better than it was.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile_s(&mut self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.samples.is_empty() {
            return 0.0;
        }
        self.sort();
        let rank = (q * self.samples.len() as f64).ceil() as usize;
        let index = rank.saturating_sub(1).min(self.samples.len() - 1);
        time::as_secs_f64(self.samples[index])
    }

    /// Median latency in seconds.
    pub fn p50_s(&mut self) -> f64 {
        self.quantile_s(0.5)
    }

    /// 99th-percentile latency in seconds.
    pub fn p99_s(&mut self) -> f64 {
        self.quantile_s(0.99)
    }

    /// Maximum latency in seconds.
    pub fn max_s(&self) -> f64 {
        time::as_secs_f64(self.samples.iter().copied().max().unwrap_or(0))
    }
}

/// The outcome of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    /// Protocol display name.
    pub protocol: String,
    /// Committee size.
    pub committee_size: usize,
    /// Number of crashed/Byzantine validators configured.
    pub faulty: usize,
    /// Offered load across all validators (tx/s).
    pub offered_load_tps: u64,
    /// Simulated run duration in seconds.
    pub duration_s: f64,
    /// Transactions committed at the observer validator.
    pub committed_transactions: u64,
    /// Committed transactions per second of simulated time (measured over
    /// the post-warm-up window).
    pub throughput_tps: f64,
    /// Client-observed latency statistics (post-warm-up submissions).
    pub latency: LatencyStats,
    /// Highest DAG round reached by the observer.
    pub highest_round: u64,
    /// Leader slots committed at the observer.
    pub committed_slots: u64,
    /// Leader slots skipped at the observer.
    pub skipped_slots: u64,
    /// Total blocks linearized into the observer's commit sequence.
    pub sequenced_blocks: u64,
    /// Total bytes offered to the network.
    pub network_bytes: u64,
}

impl SimReport {
    /// One aligned text row for experiment tables (see the bench harness).
    pub fn table_row(&self) -> String {
        let mut latency = self.latency.clone();
        format!(
            "{:<22} n={:<3} faults={:<2} load={:>8} tps | tput={:>9.0} tps | lat avg={:>6.3}s p50={:>6.3}s p99={:>6.3}s | rounds={:<6} commits={:<5} skips={}",
            self.protocol,
            self.committee_size,
            self.faulty,
            self.offered_load_tps,
            self.throughput_tps,
            self.latency.mean_s(),
            latency.p50_s(),
            latency.p99_s(),
            self.highest_round,
            self.committed_slots,
            self.skipped_slots,
        )
    }

    /// One CSV row (matching [`SimReport::csv_header`]).
    pub fn csv_row(&self) -> String {
        let mut latency = self.latency.clone();
        format!(
            "{},{},{},{},{:.1},{:.4},{:.4},{:.4},{},{},{}",
            self.protocol.replace(',', ";"),
            self.committee_size,
            self.faulty,
            self.offered_load_tps,
            self.throughput_tps,
            self.latency.mean_s(),
            latency.p50_s(),
            latency.p99_s(),
            self.highest_round,
            self.committed_slots,
            self.skipped_slots,
        )
    }

    /// Header line for [`SimReport::csv_row`].
    pub fn csv_header() -> &'static str {
        "protocol,n,faults,offered_tps,throughput_tps,latency_avg_s,latency_p50_s,latency_p99_s,rounds,commits,skips"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_on_known_samples() {
        let mut stats = LatencyStats::default();
        for ms in [100u64, 200, 300, 400, 500] {
            stats.record(time::from_millis(ms));
        }
        assert_eq!(stats.len(), 5);
        assert!((stats.mean_s() - 0.3).abs() < 1e-9);
        assert!((stats.p50_s() - 0.3).abs() < 1e-9);
        assert!((stats.max_s() - 0.5).abs() < 1e-9);
        assert!((stats.quantile_s(0.0) - 0.1).abs() < 1e-9);
        assert!((stats.quantile_s(1.0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn mean_does_not_truncate_sub_unit_values() {
        // Sub-microsecond means: integer division collapsed these to 0.
        let mut stats = LatencyStats::default();
        stats.record(0);
        stats.record(1); // 1 µs; integer mean of {0, 1} truncated to 0
        assert!(
            (stats.mean_s() - 0.5e-6).abs() < 1e-12,
            "{}",
            stats.mean_s()
        );
        // Fractional microsecond mean on realistic values.
        let mut stats = LatencyStats::default();
        for us in [100u64, 101, 101] {
            stats.record(us);
        }
        let expected = (302.0 / 3.0) * 1e-6;
        assert!((stats.mean_s() - expected).abs() < 1e-12);
    }

    #[test]
    fn quantiles_use_ceil_nearest_rank() {
        // Known 10-sample vector: 100 ms … 1000 ms.
        let mut stats = LatencyStats::default();
        for ms in (1..=10u64).map(|i| i * 100) {
            stats.record(time::from_millis(ms));
        }
        // p99 rank = ⌈0.99 × 10⌉ = 10 → the maximum. (The old rounding
        // convention also happened to land there for n = 10; the cases
        // below pin where the conventions differ.)
        assert!((stats.p99_s() - 1.0).abs() < 1e-9, "{}", stats.p99_s());
        // Nearest-rank p50 of 10 samples is the 5th sorted value (500 ms);
        // round((n − 1) · q) picked the 6th (600 ms).
        assert!((stats.p50_s() - 0.5).abs() < 1e-9, "{}", stats.p50_s());
        assert!((stats.quantile_s(0.1) - 0.1).abs() < 1e-9);
        assert!((stats.quantile_s(0.0) - 0.1).abs() < 1e-9);
        assert!((stats.quantile_s(1.0) - 1.0).abs() < 1e-9);

        // 60 samples: p99 rank = ⌈59.4⌉ = 60 → the maximum; the rounding
        // convention underestimated with the 59th value.
        let mut stats = LatencyStats::default();
        for ms in (1..=60u64).map(|i| i * 10) {
            stats.record(time::from_millis(ms));
        }
        assert!((stats.p99_s() - 0.6).abs() < 1e-9, "{}", stats.p99_s());
    }

    #[test]
    fn empty_stats_are_zero() {
        let mut stats = LatencyStats::default();
        assert!(stats.is_empty());
        assert_eq!(stats.mean_s(), 0.0);
        assert_eq!(stats.p99_s(), 0.0);
        assert_eq!(stats.max_s(), 0.0);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn quantile_bounds_checked() {
        let mut stats = LatencyStats::default();
        stats.record(1);
        let _ = stats.quantile_s(1.5);
    }

    #[test]
    fn report_rows_render() {
        let report = SimReport {
            protocol: "Mahi-Mahi-5 (2L)".into(),
            committee_size: 10,
            offered_load_tps: 10_000,
            throughput_tps: 9_800.0,
            ..SimReport::default()
        };
        assert!(report.table_row().contains("Mahi-Mahi-5"));
        assert!(report.csv_row().starts_with("Mahi-Mahi-5"));
        assert!(SimReport::csv_header().contains("throughput_tps"));
    }
}
