//! Run metrics: the quantities the paper's figures plot.
//!
//! The sample recorder itself ([`LatencyStats`]) lives in
//! `mahimahi-telemetry` — quantiles are read through an immutable
//! [`LatencySnapshot`](mahimahi_telemetry::LatencySnapshot), so reports can
//! be queried through `&self`.

pub use mahimahi_telemetry::{LatencySnapshot, LatencyStats};
use mahimahi_telemetry::{Stage, StageSnapshot};

/// The outcome of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    /// Protocol display name.
    pub protocol: String,
    /// Committee size.
    pub committee_size: usize,
    /// Number of crashed/Byzantine validators configured.
    pub faulty: usize,
    /// Offered load across all validators (tx/s).
    pub offered_load_tps: u64,
    /// Simulated run duration in seconds.
    pub duration_s: f64,
    /// Transactions committed at the observer validator.
    pub committed_transactions: u64,
    /// Committed transactions per second of simulated time (measured over
    /// the post-warm-up window).
    pub throughput_tps: f64,
    /// Client-observed latency statistics (post-warm-up submissions).
    pub latency: LatencyStats,
    /// Commit-path stage histograms merged across the honest validators.
    pub stages: StageSnapshot,
    /// Highest DAG round reached by the observer.
    pub highest_round: u64,
    /// Leader slots committed at the observer.
    pub committed_slots: u64,
    /// Leader slots skipped at the observer.
    pub skipped_slots: u64,
    /// Total blocks linearized into the observer's commit sequence.
    pub sequenced_blocks: u64,
    /// Total bytes offered to the network.
    pub network_bytes: u64,
}

impl SimReport {
    /// One aligned text row for experiment tables (see the bench harness).
    pub fn table_row(&self) -> String {
        let latency = self.latency.snapshot();
        format!(
            "{:<22} n={:<3} faults={:<2} load={:>8} tps | tput={:>9.0} tps | lat avg={:>6.3}s p50={:>6.3}s p99={:>6.3}s | rounds={:<6} commits={:<5} skips={}",
            self.protocol,
            self.committee_size,
            self.faulty,
            self.offered_load_tps,
            self.throughput_tps,
            latency.mean_s(),
            latency.p50_s(),
            latency.p99_s(),
            self.highest_round,
            self.committed_slots,
            self.skipped_slots,
        )
    }

    /// One CSV row (matching [`SimReport::csv_header`]).
    pub fn csv_row(&self) -> String {
        let latency = self.latency.snapshot();
        format!(
            "{},{},{},{},{:.1},{:.4},{:.4},{:.4},{},{},{}",
            self.protocol.replace(',', ";"),
            self.committee_size,
            self.faulty,
            self.offered_load_tps,
            self.throughput_tps,
            latency.mean_s(),
            latency.p50_s(),
            latency.p99_s(),
            self.highest_round,
            self.committed_slots,
            self.skipped_slots,
        )
    }

    /// Header line for [`SimReport::csv_row`].
    pub fn csv_header() -> &'static str {
        "protocol,n,faults,offered_tps,throughput_tps,latency_avg_s,latency_p50_s,latency_p99_s,rounds,commits,skips"
    }

    /// The p99 of one commit-path stage in seconds (0 when unsampled).
    pub fn stage_p99_s(&self, stage: Stage) -> f64 {
        self.stages.stage(stage).p99_s()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_rows_render() {
        let report = SimReport {
            protocol: "Mahi-Mahi-5 (2L)".into(),
            committee_size: 10,
            offered_load_tps: 10_000,
            throughput_tps: 9_800.0,
            ..SimReport::default()
        };
        assert!(report.table_row().contains("Mahi-Mahi-5"));
        assert!(report.csv_row().starts_with("Mahi-Mahi-5"));
        assert!(SimReport::csv_header().contains("throughput_tps"));
    }

    #[test]
    fn stage_p99_reads_from_the_snapshot() {
        let stats = mahimahi_telemetry::StageStats::detached();
        stats.record(Stage::Verified, 2_000_000);
        let report = SimReport {
            stages: stats.snapshot(),
            ..SimReport::default()
        };
        assert!(report.stage_p99_s(Stage::Verified) > 1.0);
        assert_eq!(report.stage_p99_s(Stage::Sequenced), 0.0);
    }
}
