//! Run metrics: the quantities the paper's figures plot.

use mahimahi_net::time::{self, Time};

/// Latency sample statistics (client submission → commit).
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    samples: Vec<Time>,
    sorted: bool,
}

impl LatencyStats {
    /// Records one latency sample.
    pub fn record(&mut self, latency: Time) {
        self.samples.push(latency);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean latency in seconds (0 when empty).
    pub fn mean_s(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let sum: u128 = self.samples.iter().map(|&s| s as u128).sum();
        time::as_secs_f64((sum / self.samples.len() as u128) as Time)
    }

    fn sort(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// The `q`-quantile latency in seconds (0 when empty).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile_s(&mut self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.samples.is_empty() {
            return 0.0;
        }
        self.sort();
        let index = ((self.samples.len() - 1) as f64 * q).round() as usize;
        time::as_secs_f64(self.samples[index])
    }

    /// Median latency in seconds.
    pub fn p50_s(&mut self) -> f64 {
        self.quantile_s(0.5)
    }

    /// 99th-percentile latency in seconds.
    pub fn p99_s(&mut self) -> f64 {
        self.quantile_s(0.99)
    }

    /// Maximum latency in seconds.
    pub fn max_s(&self) -> f64 {
        time::as_secs_f64(self.samples.iter().copied().max().unwrap_or(0))
    }
}

/// The outcome of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    /// Protocol display name.
    pub protocol: String,
    /// Committee size.
    pub committee_size: usize,
    /// Number of crashed/Byzantine validators configured.
    pub faulty: usize,
    /// Offered load across all validators (tx/s).
    pub offered_load_tps: u64,
    /// Simulated run duration in seconds.
    pub duration_s: f64,
    /// Transactions committed at the observer validator.
    pub committed_transactions: u64,
    /// Committed transactions per second of simulated time (measured over
    /// the post-warm-up window).
    pub throughput_tps: f64,
    /// Client-observed latency statistics (post-warm-up submissions).
    pub latency: LatencyStats,
    /// Highest DAG round reached by the observer.
    pub highest_round: u64,
    /// Leader slots committed at the observer.
    pub committed_slots: u64,
    /// Leader slots skipped at the observer.
    pub skipped_slots: u64,
    /// Total blocks linearized into the observer's commit sequence.
    pub sequenced_blocks: u64,
    /// Total bytes offered to the network.
    pub network_bytes: u64,
}

impl SimReport {
    /// One aligned text row for experiment tables (see the bench harness).
    pub fn table_row(&self) -> String {
        let mut latency = self.latency.clone();
        format!(
            "{:<22} n={:<3} faults={:<2} load={:>8} tps | tput={:>9.0} tps | lat avg={:>6.3}s p50={:>6.3}s p99={:>6.3}s | rounds={:<6} commits={:<5} skips={}",
            self.protocol,
            self.committee_size,
            self.faulty,
            self.offered_load_tps,
            self.throughput_tps,
            self.latency.mean_s(),
            latency.p50_s(),
            latency.p99_s(),
            self.highest_round,
            self.committed_slots,
            self.skipped_slots,
        )
    }

    /// One CSV row (matching [`SimReport::csv_header`]).
    pub fn csv_row(&self) -> String {
        let mut latency = self.latency.clone();
        format!(
            "{},{},{},{},{:.1},{:.4},{:.4},{:.4},{},{},{}",
            self.protocol.replace(',', ";"),
            self.committee_size,
            self.faulty,
            self.offered_load_tps,
            self.throughput_tps,
            self.latency.mean_s(),
            latency.p50_s(),
            latency.p99_s(),
            self.highest_round,
            self.committed_slots,
            self.skipped_slots,
        )
    }

    /// Header line for [`SimReport::csv_row`].
    pub fn csv_header() -> &'static str {
        "protocol,n,faults,offered_tps,throughput_tps,latency_avg_s,latency_p50_s,latency_p99_s,rounds,commits,skips"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_on_known_samples() {
        let mut stats = LatencyStats::default();
        for ms in [100u64, 200, 300, 400, 500] {
            stats.record(time::from_millis(ms));
        }
        assert_eq!(stats.len(), 5);
        assert!((stats.mean_s() - 0.3).abs() < 1e-9);
        assert!((stats.p50_s() - 0.3).abs() < 1e-9);
        assert!((stats.max_s() - 0.5).abs() < 1e-9);
        assert!((stats.quantile_s(0.0) - 0.1).abs() < 1e-9);
        assert!((stats.quantile_s(1.0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_zero() {
        let mut stats = LatencyStats::default();
        assert!(stats.is_empty());
        assert_eq!(stats.mean_s(), 0.0);
        assert_eq!(stats.p99_s(), 0.0);
        assert_eq!(stats.max_s(), 0.0);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn quantile_bounds_checked() {
        let mut stats = LatencyStats::default();
        stats.record(1);
        let _ = stats.quantile_s(1.5);
    }

    #[test]
    fn report_rows_render() {
        let report = SimReport {
            protocol: "Mahi-Mahi-5 (2L)".into(),
            committee_size: 10,
            offered_load_tps: 10_000,
            throughput_tps: 9_800.0,
            ..SimReport::default()
        };
        assert!(report.table_row().contains("Mahi-Mahi-5"));
        assert!(report.csv_row().starts_with("Mahi-Mahi-5"));
        assert!(SimReport::csv_header().contains("throughput_tps"));
    }
}
