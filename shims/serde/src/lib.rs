//! Offline shim for `serde`: marker traits plus no-op derive macros.
//!
//! The workspace annotates wire types with `#[derive(Serialize, Deserialize)]`
//! to document intent (and to ease a future swap to the real `serde`), but
//! actual encoding goes through the hand-rolled codec in
//! `mahimahi-types::codec`. The shim keeps those derives compiling offline.

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize` (no methods in the shim).
pub trait SerializeMarker {}

/// Marker counterpart of `serde::Deserialize` (no methods in the shim).
pub trait DeserializeMarker<'de> {}
