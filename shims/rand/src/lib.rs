//! Offline shim for the `rand` crate (0.8-era API surface).
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, deterministic re-implementation of the slice of `rand` that the
//! code base actually uses: [`RngCore`], [`Rng`], [`SeedableRng`],
//! [`rngs::StdRng`], and [`seq::SliceRandom`]. Algorithms are self-consistent
//! (same seed ⇒ same stream) but are not bit-compatible with upstream `rand`.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type mirroring `rand::Error` (only used in `try_fill_bytes`).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: a stream of `u32`/`u64` words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from an RNG (`Rng::gen`).
pub trait Random: Sized {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Random for $t {
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_random_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64);

impl Random for u128 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> Random for [u8; N] {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::random(rng)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Random>(&mut self) -> T {
        T::random(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::random(self) < p
    }

    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable deterministic generators.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with splitmix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }

    /// Deterministic stand-in for entropy seeding (offline build).
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x6d61_6869_6d61_6869) // "mahimahi"
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ (small, fast, high quality).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9e3779b97f4a7c15,
                    0xbf58476d1ce4e5b9,
                    0x94d049bb133111eb,
                    1,
                ];
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Random selection / permutation over slices.
    pub trait SliceRandom {
        type Item;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let index = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[index])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.gen_range(0..=3);
            assert!(y <= 3);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
