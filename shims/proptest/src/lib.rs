//! Offline shim for `proptest`: a miniature property-testing harness exposing
//! the slice of the proptest API this workspace uses — `proptest!`,
//! `prop_oneof!`, `prop_assert!`/`prop_assert_eq!`, [`strategy::Strategy`]
//! with `prop_map`, [`strategy::Just`], integer-range strategies, and
//! `proptest::bool::ANY`.
//!
//! Differences from upstream: generation is driven by a deterministic
//! per-case RNG (no persistence files) and failing cases are reported
//! without shrinking. Determinism means failures are reproducible by
//! rerunning the same test binary.

pub mod test_runner {
    use std::fmt;

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
        /// Accepted for upstream compatibility; the shim never shrinks.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 32,
                max_shrink_iters: 0,
            }
        }
    }

    /// A failed property invocation (created by `prop_assert!`).
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic splitmix64-based generator driving value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for the `case`-th invocation of a property.
        pub fn for_case(case: u64) -> Self {
            TestRng {
                state: 0x7072_6f70_7465_7374 ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeFrom, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<T, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map {
                strategy: self,
                map,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        strategy: S,
        map: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.map)(self.strategy.generate(rng))
        }
    }

    /// Weighted union built by `prop_oneof!`.
    pub struct OneOf<T> {
        options: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T> OneOf<T> {
        pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            assert!(
                options.iter().any(|(w, _)| *w > 0),
                "all prop_oneof! weights are zero"
            );
            OneOf { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.options.iter().map(|(w, _)| *w as u64).sum();
            let mut ticket = rng.next_u64() % total;
            for (weight, option) in &self.options {
                if ticket < *weight as u64 {
                    return option.generate(rng);
                }
                ticket -= *weight as u64;
            }
            unreachable!("weighted selection out of range")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    self.start + (rng.next_u64() as u128 % span) as $t
                }
            }
            impl Strategy for RangeFrom<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (<$t>::MAX as u128) - (self.start as u128) + 1;
                    self.start + (rng.next_u64() as u128 % span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u128) - (start as u128) + 1;
                    start + (rng.next_u64() as u128 % span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + (self.end - self.start) * unit
        }
    }

    /// Types with a canonical "any value" strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy produced by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Uniform strategy over every value of `T` (`proptest::prelude::any`).
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(std::marker::PhantomData)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty size range");
            SizeRange {
                min: range.start,
                max: range.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(range: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *range.start(),
                max: *range.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                min: exact,
                max: exact,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` whose length is drawn from `lengths` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, lengths: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: lengths.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let length = self.size.min + (rng.next_u64() % span) as usize;
            (0..length).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategies over `bool` (`proptest::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        __proptest_impl, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
    };
}

/// Defines property tests: `proptest! { #![proptest_config(..)] #[test] fn p(x in s) { .. } }`.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (
        ($config:expr)
        $(
            $(#[$attr:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                for case in 0..config.cases as u64 {
                    let mut proptest_rng = $crate::test_runner::TestRng::for_case(case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &$strategy,
                            &mut proptest_rng,
                        );
                    )*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(error) = outcome {
                        panic!("property failed at case {case}: {error}");
                    }
                }
            }
        )*
    };
}

/// Weighted (`w => strategy`) or uniform union of strategies.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $weight:literal => $strategy:expr ),+ $(,)? ) => {
        $crate::strategy::OneOf::new(vec![
            $( ($weight as u32, $crate::strategy::Strategy::boxed($strategy)) ),+
        ])
    };
    ( $( $strategy:expr ),+ $(,)? ) => {
        $crate::strategy::OneOf::new(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strategy)) ),+
        ])
    };
}

/// Asserts a condition inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $fmt:expr $(, $args:expr)* $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($fmt $(, $args)*),
            ));
        }
    };
}

/// Asserts equality inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $fmt:expr $(, $args:expr)* $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`\n{}",
            left,
            right,
            format!($fmt $(, $args)*)
        );
    }};
}

/// Asserts inequality inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(
            small in 0u64..10,
            wide in 5usize..=9,
            flag in crate::bool::ANY,
        ) {
            prop_assert!(small < 10, "small out of range: {}", small);
            prop_assert!((5..=9).contains(&wide));
            let _ = flag;
        }

        #[test]
        fn oneof_and_map_compose(
            choice in prop_oneof![
                3 => (0u64..5).prop_map(|v| v * 2),
                1 => Just(99u64),
            ],
        ) {
            prop_assert!(choice == 99 || (choice % 2 == 0 && choice < 10));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::for_case(3);
        let mut b = crate::test_runner::TestRng::for_case(3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
