//! Offline shim for `criterion`: a minimal micro-benchmark harness with the
//! criterion API shape (`criterion_group!`/`criterion_main!`, benchmark
//! groups, `iter`/`iter_batched`, throughput annotations).
//!
//! Each benchmark is warmed up briefly and then timed for a fixed budget;
//! the mean time per iteration is printed to stdout. There is no statistical
//! analysis, HTML report, or baseline comparison — this exists so
//! `cargo bench` and `cargo build --benches` work offline.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Units processed per iteration, printed alongside timings.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// How `iter_batched` amortizes setup (ignored by the shim's timer).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Drives the measured routine.
pub struct Bencher {
    /// Mean nanoseconds per iteration, recorded by `iter`/`iter_batched`.
    mean_nanos: f64,
    measurement_budget: Duration,
}

impl Bencher {
    fn new(measurement_budget: Duration) -> Self {
        Bencher {
            mean_nanos: 0.0,
            measurement_budget,
        }
    }

    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: a few untimed runs.
        for _ in 0..3 {
            std_black_box(routine());
        }
        let started = Instant::now();
        let mut iterations = 0u64;
        while started.elapsed() < self.measurement_budget && iterations < 100_000 {
            std_black_box(routine());
            iterations += 1;
        }
        self.mean_nanos = started.elapsed().as_nanos() as f64 / iterations.max(1) as f64;
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std_black_box(routine(setup()));
        let mut total = Duration::ZERO;
        let mut iterations = 0u64;
        while total < self.measurement_budget && iterations < 100_000 {
            let input = setup();
            let started = Instant::now();
            std_black_box(routine(input));
            total += started.elapsed();
            iterations += 1;
        }
        self.mean_nanos = total.as_nanos() as f64 / iterations.max(1) as f64;
    }
}

fn human_nanos(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos / 1_000_000_000.0)
    }
}

fn report(name: &str, mean_nanos: f64, throughput: Option<Throughput>) {
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(bytes) => {
            let gib_per_sec = bytes as f64 / mean_nanos.max(f64::MIN_POSITIVE) / 1.073_741_824;
            format!("  ({gib_per_sec:.3} GiB/s)")
        }
        Throughput::Elements(elements) => {
            let per_sec = elements as f64 / mean_nanos.max(f64::MIN_POSITIVE) * 1e9;
            format!("  ({per_sec:.0} elem/s)")
        }
    });
    println!(
        "{name:<50} time: {}{}",
        human_nanos(mean_nanos),
        rate.unwrap_or_default()
    );
}

/// Top-level benchmark driver (criterion's `Criterion` struct).
pub struct Criterion {
    measurement_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep `cargo bench` runs short: the shim aims for a quick signal,
        // not statistical rigor.
        Criterion {
            measurement_budget: Duration::from_millis(30),
        }
    }
}

impl Criterion {
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        mut routine: R,
    ) -> &mut Self {
        let mut bencher = Bencher::new(self.measurement_budget);
        routine(&mut bencher);
        report(name, bencher.mean_nanos, None);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    pub fn bench_function<R>(&mut self, id: impl Into<BenchmarkId>, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.criterion.measurement_budget);
        routine(&mut bencher);
        let label = format!("{}/{}", self.name, id.into().name);
        report(&label, bencher.mean_nanos, self.throughput);
        self
    }

    pub fn bench_with_input<I, R>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.criterion.measurement_budget);
        routine(&mut bencher, input);
        let label = format!("{}/{}", self.name, id.into().name);
        report(&label, bencher.mean_nanos, self.throughput);
        self
    }

    pub fn finish(self) {}
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; none apply here.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion {
            measurement_budget: Duration::from_millis(2),
        }
    }

    #[test]
    fn bench_function_runs_routine() {
        let mut criterion = quick();
        let mut calls = 0u64;
        criterion.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn group_with_input_and_throughput() {
        let mut criterion = quick();
        let mut group = criterion.benchmark_group("group");
        group.throughput(Throughput::Bytes(1024));
        group.bench_with_input(
            BenchmarkId::from_parameter(1024),
            &vec![0u8; 1024],
            |b, data| b.iter(|| data.iter().map(|&x| x as u64).sum::<u64>()),
        );
        group.finish();
    }

    #[test]
    fn iter_batched_consumes_inputs() {
        let mut bencher = Bencher::new(Duration::from_millis(1));
        bencher.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput);
        assert!(bencher.mean_nanos >= 0.0);
    }
}
