//! Offline shim for `serde_derive`: the derive macros exist so that
//! `#[derive(Serialize, Deserialize)]` parses, but they expand to nothing —
//! the workspace's wire format is the hand-rolled codec in
//! `mahimahi-types::codec`, so no generated impls are required.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
