//! Offline shim for the `rand_chacha` crate: a real ChaCha8 keystream
//! generator behind the `rand` shim's traits.
//!
//! Deterministic and portable (little-endian keystream per RFC 7539 word
//! layout, 8 rounds); not guaranteed bit-compatible with upstream
//! `rand_chacha`, but the workspace only relies on *self*-consistency of
//! seeded streams.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, keyed by a 32-byte seed.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means "refill".
    index: usize,
}

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..4 {
            // One double round: a column round then a diagonal round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, initial) in state.iter_mut().zip(input.iter()) {
            *word = word.wrapping_add(*initial);
        }
        self.buffer = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let word = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            let mut bytes = [0u8; 4];
            bytes.copy_from_slice(&seed[i * 4..i * 4 + 4]);
            *word = u32::from_le_bytes(bytes);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let left: Vec<u64> = (0..128).map(|_| a.next_u64()).collect();
        let right: Vec<u64> = (0..128).map(|_| b.next_u64()).collect();
        assert_eq!(left, right);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fill_bytes_matches_words() {
        let mut a = ChaCha8Rng::from_seed([7u8; 32]);
        let mut b = ChaCha8Rng::from_seed([7u8; 32]);
        let mut bytes = [0u8; 8];
        a.fill_bytes(&mut bytes);
        let expected = (b.next_u32().to_le_bytes(), b.next_u32().to_le_bytes());
        assert_eq!(&bytes[..4], &expected.0);
        assert_eq!(&bytes[4..], &expected.1);
    }
}
