//! Offline shim for `crossbeam`: an MPMC `channel` module over
//! `Mutex<VecDeque>` + `Condvar`. Both [`channel::Sender`] and
//! [`channel::Receiver`] are cloneable, matching crossbeam semantics
//! (disconnection when the *last* peer on the other side drops).

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: inner.clone(),
            },
            Receiver { inner },
        )
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.inner.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.inner.queue.lock().unwrap().push_back(value);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake blocked receivers so they observe EOF.
                // Hold the queue lock while notifying so a receiver that has
                // observed `senders > 0` but not yet parked cannot miss the
                // wakeup and block forever.
                let _queue = self.inner.queue.lock().unwrap();
                self.inner.ready.notify_all();
            }
        }
    }

    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> Receiver<T> {
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.inner.queue.lock().unwrap();
            match queue.pop_front() {
                Some(value) => Ok(value),
                None if self.inner.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.inner.queue.lock().unwrap();
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self.inner.ready.wait(queue).unwrap();
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.inner.queue.lock().unwrap();
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                let Some(remaining) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, _result) = self.inner.ready.wait_timeout(queue, remaining).unwrap();
                queue = guard;
            }
        }

        /// Blocking iterator until the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;
        use std::time::Duration;

        #[test]
        fn send_recv_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_semantics() {
            let (tx, rx) = unbounded::<u32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));

            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            let handle = thread::spawn(move || tx.send(7).unwrap());
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(7));
            handle.join().unwrap();
        }

        #[test]
        fn cloned_ends_share_queue() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            let rx2 = rx.clone();
            tx2.send(11).unwrap();
            assert_eq!(rx2.recv(), Ok(11));
            drop(tx);
            drop(tx2);
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
