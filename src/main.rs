//! `mahi-mahi` — command-line front end for the reproduction.
//!
//! ```text
//! mahi-mahi simulate  --protocol mm4 --nodes 10 --load 10000 --duration 10
//! mahi-mahi compare   --nodes 10 --load 10000            # all four systems
//! mahi-mahi cluster   --nodes 4 --txs 100                # real TCP localhost
//! mahi-mahi analyze   --faults 3 --leaders 2             # closed-form models
//! ```
//!
//! Argument parsing is hand-rolled (`--key value` pairs) to stay inside the
//! workspace's dependency budget.

use mahi_mahi::analysis;
use mahi_mahi::net::time;
use mahi_mahi::node::LocalCluster;
use mahi_mahi::sim::{AdversaryChoice, ProtocolChoice, SimConfig, Simulation};
use mahi_mahi::types::Transaction;
use std::collections::HashMap;
use std::time::Duration;

fn main() {
    let mut args = std::env::args().skip(1);
    let command = args.next().unwrap_or_else(|| "help".to_string());
    let options = parse_options(args.collect());
    match command.as_str() {
        "simulate" => simulate(&options),
        "compare" => compare(&options),
        "cluster" => cluster(&options),
        "analyze" => analyze(&options),
        _ => help(),
    }
}

/// Parses `--key value` pairs; bare flags get the value `"true"`.
fn parse_options(raw: Vec<String>) -> HashMap<String, String> {
    let mut options = HashMap::new();
    let mut iter = raw.into_iter().peekable();
    while let Some(token) = iter.next() {
        let Some(key) = token.strip_prefix("--") else {
            eprintln!("ignoring stray argument {token:?}");
            continue;
        };
        let value = match iter.peek() {
            Some(next) if !next.starts_with("--") => iter.next().expect("peeked"),
            _ => "true".to_string(),
        };
        options.insert(key.to_string(), value);
    }
    options
}

fn get<T: std::str::FromStr>(options: &HashMap<String, String>, key: &str, default: T) -> T {
    options
        .get(key)
        .and_then(|value| value.parse().ok())
        .unwrap_or(default)
}

fn protocol_of(options: &HashMap<String, String>) -> ProtocolChoice {
    let leaders = get(options, "leaders", 2usize);
    match options.get("protocol").map(String::as_str).unwrap_or("mm5") {
        "mm4" | "mahi-mahi-4" => ProtocolChoice::MahiMahi4 { leaders },
        "cm" | "cordial-miners" => ProtocolChoice::CordialMiners,
        "tusk" => ProtocolChoice::Tusk,
        _ => ProtocolChoice::MahiMahi5 { leaders },
    }
}

fn config_of(options: &HashMap<String, String>, protocol: ProtocolChoice) -> SimConfig {
    let nodes = get(options, "nodes", 10usize);
    let faults = get(options, "faults", 0usize);
    let load = get(options, "load", 10_000u64);
    let honest = nodes - faults;
    let adversary = match options.get("adversary").map(String::as_str) {
        Some("random") => AdversaryChoice::RandomSubset {
            hold: time::from_millis(150),
        },
        Some("rotating") => AdversaryChoice::RotatingDelay {
            targets: (nodes - 1) / 3,
            period: 2,
            extra: time::from_millis(400),
        },
        _ => AdversaryChoice::None,
    };
    SimConfig {
        protocol,
        committee_size: nodes,
        duration: time::from_secs(get(options, "duration", 10u64)),
        txs_per_second_per_validator: load / honest as u64,
        adversary,
        seed: get(options, "seed", 42u64),
        ..SimConfig::default()
    }
    .with_crashed(faults)
}

fn simulate(options: &HashMap<String, String>) {
    let config = config_of(options, protocol_of(options));
    println!(
        "simulating {} … ({} validators, {} crashed, {} tx/s offered)",
        config.protocol.name(),
        config.committee_size,
        config.behaviors.len(),
        config.txs_per_second_per_validator
            * (config.committee_size - config.behaviors.len()) as u64,
    );
    let report = Simulation::new(config).run();
    println!("{}", report.table_row());
}

fn compare(options: &HashMap<String, String>) {
    for protocol in [
        ProtocolChoice::Tusk,
        ProtocolChoice::CordialMiners,
        ProtocolChoice::MahiMahi5 { leaders: 2 },
        ProtocolChoice::MahiMahi4 { leaders: 2 },
    ] {
        let report = Simulation::new(config_of(options, protocol)).run();
        println!("{}", report.table_row());
    }
}

fn cluster(options: &HashMap<String, String>) {
    let nodes = get(options, "nodes", 4usize);
    let txs = get(options, "txs", 100u64);
    let cluster = LocalCluster::start(nodes, get(options, "seed", 42)).expect("start cluster");
    println!("started {nodes} validators on localhost; submitting {txs} transactions");
    for id in 0..txs {
        cluster.submit((id % nodes as u64) as usize, Transaction::benchmark(id));
    }
    let mut committed = std::collections::HashSet::new();
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    while committed.len() < txs as usize && std::time::Instant::now() < deadline {
        if let Ok(sub_dag) = cluster.commits(0).recv_timeout(Duration::from_millis(200)) {
            committed.extend(sub_dag.transactions().filter_map(Transaction::benchmark_id));
        }
    }
    println!("{} / {txs} transactions committed", committed.len());
    cluster.stop();
}

fn analyze(options: &HashMap<String, String>) {
    let f = get(options, "faults", 3u64);
    let leaders = get(options, "leaders", 2u64);
    let n = 3 * f + 1;
    println!("committee n = {n} (f = {f}), ℓ = {leaders} leader slots per round\n");
    println!(
        "Lemma 13 (w = 5, asynchronous): P(direct commit per round) ≥ {:.4}",
        analysis::direct_commit_probability_w5(f, leaders)
    );
    println!(
        "Lemma 16 (w = 4, asynchronous): P(direct commit per round) ≥ {:.4}",
        analysis::direct_commit_probability_w4_async(f, leaders)
    );
    println!(
        "Lemma 17 (w = 4, random network): P(some vote missing) ≤ {:.2e}",
        analysis::w4_random_unreachable_bound(f)
    );
    for (label, model) in [
        (
            "Mahi-Mahi-4",
            analysis::ProtocolModel::MahiMahi { wave_length: 4 },
        ),
        (
            "Mahi-Mahi-5",
            analysis::ProtocolModel::MahiMahi { wave_length: 5 },
        ),
        (
            "Cordial Miners",
            analysis::ProtocolModel::CordialMiners { wave_length: 5 },
        ),
        ("Tusk", analysis::ProtocolModel::Tusk),
    ] {
        println!(
            "expected commit latency ({label:<14}): {:>5.2} message delays",
            analysis::expected_commit_delays(model)
        );
    }
}

fn help() {
    println!(
        "mahi-mahi — reproduction of the Mahi-Mahi asynchronous BFT consensus paper

USAGE:
  mahi-mahi simulate [--protocol mm5|mm4|cm|tusk] [--nodes N] [--faults F]
                     [--load TPS] [--duration SECS] [--leaders L] [--seed S]
                     [--adversary random|rotating]
  mahi-mahi compare  [same options]     run all four systems
  mahi-mahi cluster  [--nodes N] [--txs T]   real TCP cluster on localhost
  mahi-mahi analyze  [--faults F] [--leaders L]  closed-form models
"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_parse_pairs_and_flags() {
        let options = parse_options(
            ["--nodes", "10", "--quick", "--load", "500"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        );
        assert_eq!(get(&options, "nodes", 0usize), 10);
        assert_eq!(options.get("quick").map(String::as_str), Some("true"));
        assert_eq!(get(&options, "load", 0u64), 500);
        assert_eq!(get(&options, "missing", 7u64), 7);
    }

    #[test]
    fn protocol_selection() {
        let mut options = HashMap::new();
        options.insert("protocol".into(), "tusk".into());
        assert_eq!(protocol_of(&options), ProtocolChoice::Tusk);
        options.insert("protocol".into(), "mm4".into());
        options.insert("leaders".into(), "3".into());
        assert_eq!(
            protocol_of(&options),
            ProtocolChoice::MahiMahi4 { leaders: 3 }
        );
    }

    #[test]
    fn config_reflects_options() {
        let mut options = HashMap::new();
        options.insert("nodes".into(), "10".into());
        options.insert("faults".into(), "3".into());
        options.insert("load".into(), "7000".into());
        let config = config_of(&options, ProtocolChoice::CordialMiners);
        assert_eq!(config.committee_size, 10);
        assert_eq!(config.behaviors.len(), 3);
        assert_eq!(config.txs_per_second_per_validator, 1000);
    }
}
