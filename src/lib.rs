//! # Mahi-Mahi: low-latency asynchronous BFT DAG-based consensus
//!
//! A from-scratch Rust reproduction of *"Mahi-Mahi: Low-Latency
//! Asynchronous BFT DAG-Based Consensus"* (Jovanovic, Kokoris-Kogias,
//! Kumara, Sonnino, Tennage, Zablotchi — ICDCS 2025, arXiv:2410.08670):
//! the protocol, the baselines it is evaluated against (Cordial Miners and
//! Tusk), and every substrate they need.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`types`] | `mahimahi-types` | committees, blocks, references, transactions, wire codec |
//! | [`crypto`] | `mahimahi-crypto` | BLAKE2b, Schnorr signatures, threshold coin |
//! | [`wal`] | `mahimahi-wal` | crash-safe write-ahead log |
//! | [`dag`] | `mahimahi-dag` | the uncertified DAG store and Algorithm 3's traversals |
//! | [`core`] | `mahimahi-core` | **the Mahi-Mahi committer** (Algorithms 1–2) |
//! | [`baselines`] | `mahimahi-baselines` | Cordial Miners and Tusk committers |
//! | [`net`] | `mahimahi-net` | deterministic WAN simulator with adversaries |
//! | [`telemetry`] | `mahimahi-telemetry` | counters, gauges, log-scale histograms, stage tracing |
//! | [`sim`] | `mahimahi-sim` | whole-protocol simulation harness and metrics |
//! | [`scenarios`] | `mahimahi-scenarios` | attack scenarios, conformance oracles, matrix sweep |
//! | [`transport`] | `mahimahi-transport` | length-prefixed TCP transport |
//! | [`node`] | `mahimahi-node` | networked validator with WAL recovery |
//! | [`analysis`] | `mahimahi-analysis` | the paper's closed-form latency/commit models |
//!
//! ## Quickstart
//!
//! ```
//! use mahi_mahi::core::{Committer, CommitterOptions, CommitSequencer, CommitDecision};
//! use mahi_mahi::dag::DagBuilder;
//! use mahi_mahi::types::TestCommittee;
//!
//! // Provision a 4-validator committee and build a few DAG rounds.
//! let setup = TestCommittee::new(4, 42);
//! let committee = setup.committee().clone();
//! let mut dag = DagBuilder::new(setup);
//! dag.add_full_rounds(8);
//!
//! // Run the Mahi-Mahi commit rule (wave length 5, 2 leaders per round).
//! let committer = Committer::new(committee, CommitterOptions::default());
//! let mut sequencer = CommitSequencer::new(committer);
//! for decision in sequencer.try_commit(dag.store()) {
//!     if let CommitDecision::Commit(sub_dag) = decision {
//!         println!("committed leader {} (+{} blocks)", sub_dag.leader, sub_dag.blocks.len());
//!     }
//! }
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `DESIGN.md` /
//! `EXPERIMENTS.md` for the reproduction methodology.

/// The paper's closed-form models (Appendix C).
pub use mahimahi_analysis as analysis;
/// Baseline committers: Cordial Miners and Tusk.
pub use mahimahi_baselines as baselines;
/// The Mahi-Mahi committer.
pub use mahimahi_core as core;
/// Cryptographic substrate.
pub use mahimahi_crypto as crypto;
/// The uncertified DAG store.
pub use mahimahi_dag as dag;
/// Deterministic network simulator.
pub use mahimahi_net as net;
/// Networked validator node.
pub use mahimahi_node as node;
/// Attack scenarios, conformance oracles, and the matrix sweep.
pub use mahimahi_scenarios as scenarios;
/// Whole-protocol simulation harness.
pub use mahimahi_sim as sim;
/// Metrics core: counters, gauges, histograms, stage tracing.
pub use mahimahi_telemetry as telemetry;
/// TCP transport.
pub use mahimahi_transport as transport;
/// Protocol types.
pub use mahimahi_types as types;
/// Write-ahead log.
pub use mahimahi_wal as wal;
