//! Fault tolerance: crashes, equivocation, and an adversarial scheduler.
//!
//! Exercises the failure modes the paper's design sections revolve around:
//!
//! 1. the maximum number of benign crashes (`f = 3` of 10) — the direct
//!    skip rule keeps latency low (claim C3);
//! 2. a Byzantine equivocator — the commit rule commits at most one of the
//!    equivocating blocks per slot (Lemma 2);
//! 3. a continuously active asynchronous adversary delaying rotating
//!    targets — liveness is preserved (the coin elects leaders after the
//!    fact).
//!
//! ```text
//! cargo run --release --example faults_and_equivocation
//! ```

use mahi_mahi::net::time;
use mahi_mahi::sim::{AdversaryChoice, Behavior, ProtocolChoice, SimConfig, Simulation};

fn base() -> SimConfig {
    SimConfig {
        protocol: ProtocolChoice::MahiMahi5 { leaders: 2 },
        committee_size: 10,
        duration: time::from_secs(10),
        txs_per_second_per_validator: 500,
        seed: 13,
        ..SimConfig::default()
    }
}

fn main() {
    println!("--- 1. three crashed validators (max f) ---");
    let report = Simulation::new(base().with_crashed(3)).run();
    println!("{}", report.table_row());
    println!(
        "crashed leader slots skipped: {} (directly, ~2 rounds earlier than \
         Cordial Miners would)\n",
        report.skipped_slots
    );

    println!("--- 2. one equivocating validator ---");
    let mut config = base();
    config.behaviors = vec![(9, Behavior::Equivocator)];
    let outcome = Simulation::new(config).run_full();
    let (report, logs) = (outcome.report, outcome.logs);
    println!("{}", report.table_row());
    // Safety check: every pair of honest logs is prefix-consistent.
    let honest_logs: Vec<_> = logs[..9].to_vec();
    for (i, a) in honest_logs.iter().enumerate() {
        for b in honest_logs.iter().skip(i + 1) {
            let len = a.len().min(b.len());
            assert_eq!(&a[..len], &b[..len], "commit sequences diverged!");
        }
    }
    println!("all 9 honest validators agree on the commit sequence ✔");
    // Fault attribution: the store emits an equivocation proof the moment
    // a second digest lands in a slot, and flood-once gossip converges
    // every honest validator on the same culprit set.
    for (validator, convicted) in outcome.culprits[..9].iter().enumerate() {
        assert_eq!(
            convicted.as_slice(),
            &[mahi_mahi::types::AuthorityIndex(9)],
            "validator {validator} attribution"
        );
    }
    println!("all 9 honest validators convicted exactly v9 of equivocation ✔\n");

    println!("--- 3. asynchronous adversary (rotating targeted delays) ---");
    let mut config = base();
    config.adversary = AdversaryChoice::RotatingDelay {
        targets: 3,
        period: 2,
        extra: time::from_millis(400),
    };
    let report = Simulation::new(config).run();
    println!("{}", report.table_row());
    assert!(report.committed_transactions > 0);
    println!("liveness preserved under targeted delays ✔");
}
