//! Quickstart: run the Mahi-Mahi commit rule over a hand-built DAG.
//!
//! Builds eight full DAG rounds for a four-validator committee, lets the
//! committer classify every leader slot, and prints the resulting total
//! order — the core of the protocol with no networking involved.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use mahi_mahi::core::{CommitDecision, CommitSequencer, Committer, CommitterOptions};
use mahi_mahi::dag::DagBuilder;
use mahi_mahi::types::{TestCommittee, Transaction};

fn main() {
    // 1. Provision a committee of four validators (n = 3f + 1, f = 1).
    //    The TestCommittee holds every validator's signing key and coin
    //    share; a real deployment hands each validator only its own.
    let setup = TestCommittee::new(4, 42);
    let committee = setup.committee().clone();
    println!(
        "committee: n = {}, f = {}, quorum = {}",
        committee.size(),
        committee.f(),
        committee.quorum_threshold()
    );

    // 2. Build a DAG: every round, every validator proposes a block
    //    referencing the full previous round, with a transaction inside.
    let mut dag = DagBuilder::new(setup);
    let mut tx_id = 0u64;
    for _ in 0..8 {
        let specs = (0..4)
            .map(|author| {
                tx_id += 1;
                mahi_mahi::dag::BlockSpec::new(author)
                    .with_transactions(vec![Transaction::benchmark(tx_id)])
            })
            .collect();
        dag.add_round(specs);
    }
    println!(
        "dag: {} blocks across rounds 0..={}",
        dag.store().len(),
        dag.store().highest_round()
    );

    // 3. Run the committer: wave length 5, two leader slots per round.
    let committer = Committer::new(committee, CommitterOptions::default());
    let mut sequencer = CommitSequencer::new(committer);
    let decisions = sequencer.try_commit(dag.store());

    // 4. Print the total order.
    println!("\ncommit sequence:");
    for decision in &decisions {
        match decision {
            CommitDecision::Commit(sub_dag) => {
                let transactions: usize = sub_dag
                    .blocks
                    .iter()
                    .map(|block| block.transactions().len())
                    .sum();
                println!(
                    "  #{:<3} commit leader {}  (+{} blocks, {} txs)",
                    sub_dag.position,
                    sub_dag.leader,
                    sub_dag.blocks.len(),
                    transactions,
                );
            }
            CommitDecision::Skip(position, slot) => {
                println!("  #{position:<3} skip   {slot}");
            }
        }
    }
    println!(
        "\n{} slots decided, {} blocks sequenced",
        decisions.len(),
        sequencer.emitted_blocks()
    );
}
