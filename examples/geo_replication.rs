//! Geo-replication: the paper's WAN comparison in miniature.
//!
//! Runs all four systems of Figure 3 — Tusk, Cordial Miners, Mahi-Mahi-5,
//! Mahi-Mahi-4 — on the simulated five-region AWS WAN with ten validators
//! and prints the throughput/latency comparison.
//!
//! ```text
//! cargo run --release --example geo_replication
//! ```

use mahi_mahi::sim::{ProtocolChoice, SimConfig, Simulation};

fn main() {
    let systems = [
        ProtocolChoice::Tusk,
        ProtocolChoice::CordialMiners,
        ProtocolChoice::MahiMahi5 { leaders: 2 },
        ProtocolChoice::MahiMahi4 { leaders: 2 },
    ];
    println!("10 validators across Ohio / Oregon / Cape Town / Hong Kong / Milan");
    println!("open-loop load: 10,000 tx/s of 512-byte transactions\n");
    let mut rows = Vec::new();
    for protocol in systems {
        let config = SimConfig {
            protocol,
            committee_size: 10,
            duration: mahi_mahi::net::time::from_secs(10),
            txs_per_second_per_validator: 1_000,
            seed: 7,
            ..SimConfig::default()
        };
        let report = Simulation::new(config).run();
        println!("{}", report.table_row());
        rows.push((report.protocol.clone(), report.latency.mean_s()));
    }
    let mahi4 = rows
        .iter()
        .find(|(name, _)| name.contains("Mahi-Mahi-4"))
        .expect("mahi-mahi-4 ran");
    let tusk = rows
        .iter()
        .find(|(name, _)| name.contains("Tusk"))
        .expect("tusk ran");
    println!(
        "\nMahi-Mahi-4 cuts latency {:.0}% vs Tusk (paper: ~74%)",
        (1.0 - mahi4.1 / tusk.1) * 100.0
    );
}
