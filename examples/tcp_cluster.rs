//! Real networking: a four-validator Mahi-Mahi cluster over TCP.
//!
//! Starts four `ValidatorNode`s on localhost (threads + raw TCP, as in the
//! paper's Section 4 implementation), submits client transactions to each,
//! and tails the commit stream.
//!
//! ```text
//! cargo run --release --example tcp_cluster
//! ```

use mahi_mahi::node::LocalCluster;
use mahi_mahi::types::Transaction;
use std::time::{Duration, Instant};

fn main() {
    let cluster = LocalCluster::start(4, 2024).expect("start cluster");
    println!("started {} validators on localhost", cluster.running());

    // Submit 100 transactions round-robin.
    for id in 0..100u64 {
        cluster.submit((id % 4) as usize, Transaction::benchmark(id));
    }

    // Tail validator 0's commit stream until all 100 transactions commit.
    let mut committed = std::collections::HashSet::new();
    let deadline = Instant::now() + Duration::from_secs(30);
    while committed.len() < 100 && Instant::now() < deadline {
        if let Ok(sub_dag) = cluster.commits(0).recv_timeout(Duration::from_millis(200)) {
            let txs: Vec<u64> = sub_dag
                .transactions()
                .filter_map(Transaction::benchmark_id)
                .collect();
            if !txs.is_empty() {
                println!(
                    "commit #{}: leader {} carries {} txs",
                    sub_dag.position,
                    sub_dag.leader,
                    txs.len()
                );
            }
            committed.extend(txs);
        }
    }
    println!("\n{} / 100 transactions committed", committed.len());
    cluster.stop();
    assert_eq!(committed.len(), 100, "all transactions must commit");
    println!("cluster stopped cleanly ✔");
}
